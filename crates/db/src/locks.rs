//! Strict two-phase locking with shared/exclusive modes.
//!
//! Two deadlock-handling policies, compared by ablation A3:
//!
//! * [`DeadlockPolicy::WoundWait`] — prevention: an older requester
//!   *wounds* (forces the abort of) younger conflicting holders; a younger
//!   requester waits. Wait-for edges only ever point from younger to older
//!   transactions, so no cycle can form.
//! * [`DeadlockPolicy::Detect`] — detection: requests always wait; the
//!   caller periodically asks for a cycle in the wait-for graph and aborts
//!   the youngest member.
//!
//! The manager only *bookkeeps*; aborting a wounded or victim transaction
//! (undoing its writes, releasing its locks) is the caller's job, which is
//! exactly how the replication protocols drive it.
//!
//! ## Hot-path design
//!
//! The lock table is dense (`Vec` indexed by `Key`) when built with a
//! bounded [`Keyspace`], with an Fx-hashed map as the sparse fallback.
//! The wait-for graph is maintained *incrementally*: each key caches its
//! own edge contribution and a global sorted multiset is patched on
//! acquire/release/promote, so [`LockManager::wait_for_edges`] and
//! [`LockManager::find_deadlock`] read it off instead of re-scanning the
//! table. With no waiters anywhere, both are allocation-free.
//!
//! Edge maintenance activates *lazily*, on the first wait-for-graph query
//! (a one-time table rebuild, incremental from then on). Wound-wait
//! callers never query the graph — prevention makes cycles impossible —
//! so they never pay for it.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::hash::FxHashMap;
use crate::item::{Key, Keyspace, TxnId};

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared (read) lock; compatible with other shared locks.
    Shared,
    /// Exclusive (write) lock; incompatible with everything.
    Exclusive,
}

impl LockMode {
    /// Lock compatibility matrix.
    pub fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }
}

/// Deadlock-handling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlockPolicy {
    /// Wound-wait prevention (default).
    #[default]
    WoundWait,
    /// Pure waiting; deadlocks resolved via [`LockManager::find_deadlock`].
    Detect,
}

/// Result of a lock request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Acquire {
    /// The lock was granted immediately.
    Granted,
    /// The requester must wait; under wound-wait, `wounded` lists younger
    /// holders the caller must abort to make progress.
    Waiting {
        /// Transactions wounded by this request (empty under `Detect`).
        wounded: Vec<TxnId>,
    },
}

#[derive(Debug, Default)]
struct LockState {
    holders: Vec<(TxnId, LockMode)>,
    waiters: VecDeque<(TxnId, LockMode)>,
    /// This key's cached contribution to the wait-for graph: sorted,
    /// deduplicated. Kept in lockstep with `holders`/`waiters` by
    /// `LockManager::refresh_edges`.
    edges: Vec<(TxnId, TxnId)>,
}

impl LockState {
    fn holds(&self, txn: TxnId) -> Option<LockMode> {
        self.holders
            .iter()
            .find(|(t, _)| *t == txn)
            .map(|(_, m)| *m)
    }

    fn compatible_with_holders(&self, txn: TxnId, mode: LockMode) -> bool {
        self.holders
            .iter()
            .all(|(t, m)| *t == txn || m.compatible(mode))
    }
}

/// DFS colors for `find_deadlock`, kept as bytes in a reusable buffer.
const WHITE: u8 = 0;
const GRAY: u8 = 1;
const BLACK: u8 = 2;

/// The lock table of one site.
///
/// # Examples
///
/// ```
/// use repl_db::{LockManager, DeadlockPolicy, LockMode, Acquire, Key, TxnId};
///
/// let mut lm = LockManager::new(DeadlockPolicy::WoundWait);
/// let t1 = TxnId::new(1, 0);
/// let t2 = TxnId::new(2, 0);
/// assert_eq!(lm.acquire(t1, Key(0), LockMode::Exclusive), Acquire::Granted);
/// // Younger t2 must wait, wounding nobody.
/// assert_eq!(lm.acquire(t2, Key(0), LockMode::Shared), Acquire::Waiting { wounded: vec![] });
/// let granted = lm.release_all(t1);
/// assert_eq!(granted, vec![(t2, Key(0), LockMode::Shared)]);
/// ```
#[derive(Debug)]
pub struct LockManager {
    policy: DeadlockPolicy,
    ks: Keyspace,
    /// Dense table: slot `i` is `Key(i)`'s lock state. Empty when sparse.
    dense: Vec<LockState>,
    /// Sparse table; on the dense path this only serves keys outside the
    /// declared range.
    sparse: FxHashMap<Key, LockState>,
    /// Keys each transaction holds (sorted per txn for deterministic
    /// release order).
    held: FxHashMap<TxnId, BTreeSet<Key>>,
    /// Keys each transaction waits on, maintained so `release_all` never
    /// scans the whole table for pending waits.
    waiting: FxHashMap<TxnId, BTreeSet<Key>>,
    /// The global wait-for graph as a sorted edge multiset: how many keys
    /// currently contribute each `waiter → blocker` edge.
    edge_counts: BTreeMap<(TxnId, TxnId), u32>,
    /// Whether the edge multiset is live. Off until the first query so
    /// callers that never look at the graph pay nothing.
    track_edges: bool,
    /// Scratch for `refresh_edges` (reused across calls).
    edge_scratch: Vec<(TxnId, TxnId)>,
    /// Scratch for `release_all`'s touched-key list.
    touched_scratch: Vec<Key>,
    // Persistent `find_deadlock` scratch: node list, CSR edge list and
    // per-node ranges, colors, explicit DFS stack and path.
    dl_nodes: Vec<TxnId>,
    dl_edges: Vec<(TxnId, TxnId)>,
    dl_ranges: Vec<(usize, usize)>,
    dl_color: Vec<u8>,
    dl_stack: Vec<(usize, usize)>,
    dl_path: Vec<usize>,
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager::new(DeadlockPolicy::default())
    }
}

impl LockManager {
    /// Creates an empty lock table over an open (sparse) keyspace.
    pub fn new(policy: DeadlockPolicy) -> Self {
        LockManager::with_keyspace(policy, Keyspace::sparse(0))
    }

    /// Creates a lock table backed for `ks`: dense `Vec` slots for a
    /// bounded keyspace, a hash table otherwise.
    pub fn with_keyspace(policy: DeadlockPolicy, ks: Keyspace) -> Self {
        let mut dense = Vec::new();
        if ks.dense {
            dense.resize_with(ks.items as usize, LockState::default);
        }
        LockManager {
            policy,
            ks,
            dense,
            sparse: FxHashMap::default(),
            held: FxHashMap::default(),
            waiting: FxHashMap::default(),
            edge_counts: BTreeMap::new(),
            track_edges: false,
            edge_scratch: Vec::new(),
            touched_scratch: Vec::new(),
            dl_nodes: Vec::new(),
            dl_edges: Vec::new(),
            dl_ranges: Vec::new(),
            dl_color: Vec::new(),
            dl_stack: Vec::new(),
            dl_path: Vec::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> DeadlockPolicy {
        self.policy
    }

    /// The keyspace this table was built for.
    pub fn keyspace(&self) -> Keyspace {
        self.ks
    }

    #[inline(always)]
    fn state(&self, key: Key) -> Option<&LockState> {
        match self.dense.get(key.0 as usize) {
            Some(s) => Some(s),
            None => self.sparse.get(&key),
        }
    }

    /// Requests `mode` on `key` for `txn`.
    ///
    /// Re-entrant: holding the same or a stronger mode returns `Granted`;
    /// a shared holder requesting exclusive performs an upgrade (granted if
    /// sole holder, otherwise queued with priority).
    pub fn acquire(&mut self, txn: TxnId, key: Key, mode: LockMode) -> Acquire {
        let state: &mut LockState = if (key.0 as usize) < self.dense.len() {
            &mut self.dense[key.0 as usize]
        } else {
            self.sparse.entry(key).or_default()
        };
        if let Some(held_mode) = state.holds(txn) {
            match (held_mode, mode) {
                (LockMode::Exclusive, _) | (LockMode::Shared, LockMode::Shared) => {
                    return Acquire::Granted;
                }
                (LockMode::Shared, LockMode::Exclusive) => {
                    if state.holders.len() == 1 {
                        state.holders[0].1 = LockMode::Exclusive;
                        // Waiters may exist (queued behind the shared
                        // holder); their edges to this holder change mode.
                        self.refresh_edges(key);
                        return Acquire::Granted;
                    }
                    if !state.waiters.iter().any(|(t, _)| *t == txn) {
                        // Under detection, upgrades get priority (front of
                        // queue). Under wound-wait they must queue at the
                        // back: jumping ahead of an already-checked older
                        // waiter would re-introduce cycles.
                        if self.policy == DeadlockPolicy::Detect {
                            state.waiters.push_front((txn, LockMode::Exclusive));
                        } else {
                            state.waiters.push_back((txn, LockMode::Exclusive));
                        }
                        self.waiting.entry(txn).or_default().insert(key);
                    }
                    let wounded = self.wound(txn, key);
                    self.refresh_edges(key);
                    return Acquire::Waiting { wounded };
                }
            }
        }
        if state.compatible_with_holders(txn, mode) && state.waiters.is_empty() {
            state.holders.push((txn, mode));
            self.held.entry(txn).or_default().insert(key);
            return Acquire::Granted;
        }
        if !state.waiters.iter().any(|(t, _)| *t == txn) {
            state.waiters.push_back((txn, mode));
            self.waiting.entry(txn).or_default().insert(key);
        }
        let wounded = self.wound(txn, key);
        self.refresh_edges(key);
        Acquire::Waiting { wounded }
    }

    /// Under wound-wait, returns the younger conflicting transactions the
    /// requester wounds: holders, and waiters queued ahead of it (which
    /// would otherwise block it through queue order). The caller must
    /// abort them.
    fn wound(&mut self, requester: TxnId, key: Key) -> Vec<TxnId> {
        if self.policy != DeadlockPolicy::WoundWait {
            return Vec::new();
        }
        let Some(state) = self.state(key) else {
            return Vec::new();
        };
        let (pos, mode) = match state
            .waiters
            .iter()
            .enumerate()
            .find(|(_, (t, _))| *t == requester)
        {
            Some((i, &(_, m))) => (i, m),
            None => (state.waiters.len(), LockMode::Exclusive),
        };
        let mut wounded: Vec<TxnId> = state
            .holders
            .iter()
            .filter(|(h, hm)| {
                *h != requester && !hm.compatible(mode) && requester.is_older_than(*h)
            })
            .map(|(h, _)| *h)
            .collect();
        for &(w, wm) in state.waiters.iter().take(pos) {
            if w != requester && !wm.compatible(mode) && requester.is_older_than(w) {
                wounded.push(w);
            }
        }
        wounded.sort_unstable();
        wounded.dedup();
        wounded
    }

    /// Computes `state`'s contribution to the wait-for graph into `out`
    /// (sorted, deduplicated).
    fn state_edges(state: &LockState, out: &mut Vec<(TxnId, TxnId)>) {
        out.clear();
        for (wi, &(w, wm)) in state.waiters.iter().enumerate() {
            for &(h, hm) in &state.holders {
                if h != w && !wm.compatible(hm) {
                    out.push((w, h));
                }
            }
            for &(w2, w2m) in state.waiters.iter().take(wi) {
                if w2 != w && !wm.compatible(w2m) {
                    out.push((w, w2));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Switches incremental edge maintenance on, seeding the per-key
    /// caches and the global multiset from the current table. A no-op
    /// after the first call.
    fn enable_edge_tracking(&mut self) {
        if self.track_edges {
            return;
        }
        self.track_edges = true;
        let scratch = &mut self.edge_scratch;
        let edge_counts = &mut self.edge_counts;
        for state in self.dense.iter_mut().chain(self.sparse.values_mut()) {
            if state.waiters.is_empty() {
                continue;
            }
            Self::state_edges(state, scratch);
            for &e in scratch.iter() {
                *edge_counts.entry(e).or_insert(0) += 1;
            }
            state.edges.clear();
            state.edges.extend_from_slice(scratch);
        }
    }

    /// Recomputes `key`'s contribution to the wait-for graph and patches
    /// the global edge multiset with the difference. Free when tracking is
    /// off, or when the key has no waiters and contributed nothing (the
    /// uncontended fast path).
    fn refresh_edges(&mut self, key: Key) {
        if !self.track_edges {
            return;
        }
        let state: &mut LockState = if (key.0 as usize) < self.dense.len() {
            &mut self.dense[key.0 as usize]
        } else {
            match self.sparse.get_mut(&key) {
                Some(s) => s,
                None => return,
            }
        };
        if state.waiters.is_empty() && state.edges.is_empty() {
            return;
        }
        let mut scratch = std::mem::take(&mut self.edge_scratch);
        Self::state_edges(state, &mut scratch);
        if scratch != state.edges {
            for e in &state.edges {
                match self.edge_counts.get_mut(e) {
                    Some(c) if *c > 1 => *c -= 1,
                    Some(_) => {
                        self.edge_counts.remove(e);
                    }
                    None => debug_assert!(false, "cached edge missing from multiset"),
                }
            }
            for &e in &scratch {
                *self.edge_counts.entry(e).or_insert(0) += 1;
            }
            std::mem::swap(&mut state.edges, &mut scratch);
        }
        self.edge_scratch = scratch;
    }

    /// Releases every lock `txn` holds or waits for; returns the requests
    /// newly granted as a consequence, in grant order.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<(TxnId, Key, LockMode)> {
        let mut touched = std::mem::take(&mut self.touched_scratch);
        touched.clear();
        if let Some(keys) = self.held.remove(&txn) {
            touched.extend(keys);
        }
        if let Some(keys) = self.waiting.remove(&txn) {
            touched.extend(keys);
        }
        touched.sort_unstable();
        touched.dedup();
        let mut granted = Vec::new();
        for &key in &touched {
            let state: &mut LockState = if (key.0 as usize) < self.dense.len() {
                &mut self.dense[key.0 as usize]
            } else {
                match self.sparse.get_mut(&key) {
                    Some(s) => s,
                    None => continue,
                }
            };
            state.holders.retain(|(t, _)| *t != txn);
            state.waiters.retain(|(t, _)| *t != txn);
            self.promote(key, &mut granted);
            self.refresh_edges(key);
        }
        self.touched_scratch = touched;
        granted
    }

    /// Promotes waiters on `key` that have become grantable.
    fn promote(&mut self, key: Key, granted: &mut Vec<(TxnId, Key, LockMode)>) {
        let state: &mut LockState = if (key.0 as usize) < self.dense.len() {
            &mut self.dense[key.0 as usize]
        } else {
            match self.sparse.get_mut(&key) {
                Some(s) => s,
                None => return,
            }
        };
        while let Some(&(txn, mode)) = state.waiters.front() {
            // Upgrade case: txn already holds shared and waits for
            // exclusive, so its own holder entry doesn't block it.
            let compatible = state
                .holders
                .iter()
                .all(|&(t, m)| t == txn || m.compatible(mode));
            if !compatible {
                break;
            }
            state.waiters.pop_front();
            if let Some(h) = state.holders.iter_mut().find(|(t, _)| *t == txn) {
                h.1 = mode;
            } else {
                state.holders.push((txn, mode));
            }
            self.held.entry(txn).or_default().insert(key);
            if let Some(w) = self.waiting.get_mut(&txn) {
                w.remove(&key);
            }
            granted.push((txn, key, mode));
            if mode == LockMode::Exclusive {
                break;
            }
        }
    }

    /// The current holders of `key`.
    pub fn holders(&self, key: Key) -> Vec<(TxnId, LockMode)> {
        self.state(key)
            .map(|s| s.holders.clone())
            .unwrap_or_default()
    }

    /// The current waiters on `key`, in queue order.
    pub fn waiters(&self, key: Key) -> Vec<(TxnId, LockMode)> {
        self.state(key)
            .map(|s| s.waiters.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The wait-for graph: `waiter → holder` edges for conflicting pairs,
    /// plus `waiter → earlier incompatible waiter` (queue order). Sorted
    /// and deduplicated; read off the incrementally maintained multiset
    /// (activated on first call). Allocation-free when no transaction is
    /// waiting.
    pub fn wait_for_edges(&mut self) -> Vec<(TxnId, TxnId)> {
        self.enable_edge_tracking();
        if self.edge_counts.is_empty() {
            return Vec::new();
        }
        self.edge_counts.keys().copied().collect()
    }

    /// Finds a deadlock cycle in the wait-for graph, if any, returning its
    /// members. The conventional victim is the youngest member.
    ///
    /// Runs the DFS entirely in persistent scratch buffers: with no
    /// waiters it is allocation-free, and it only allocates for the
    /// returned cycle.
    pub fn find_deadlock(&mut self) -> Option<Vec<TxnId>> {
        self.enable_edge_tracking();
        if self.edge_counts.is_empty() {
            return None;
        }
        // Load the sorted edge list and node set into scratch.
        self.dl_edges.clear();
        self.dl_edges.extend(self.edge_counts.keys().copied());
        self.dl_nodes.clear();
        for &(a, b) in &self.dl_edges {
            self.dl_nodes.push(a);
            self.dl_nodes.push(b);
        }
        self.dl_nodes.sort_unstable();
        self.dl_nodes.dedup();
        // CSR adjacency: edges are sorted by source, so each node's
        // targets are one contiguous (already sorted) range.
        self.dl_ranges.clear();
        self.dl_ranges.resize(self.dl_nodes.len(), (0, 0));
        let mut ei = 0;
        for (ni, &n) in self.dl_nodes.iter().enumerate() {
            while ei < self.dl_edges.len() && self.dl_edges[ei].0 < n {
                ei += 1;
            }
            let start = ei;
            while ei < self.dl_edges.len() && self.dl_edges[ei].0 == n {
                ei += 1;
            }
            self.dl_ranges[ni] = (start, ei);
        }
        // Iterative DFS with colors, starting from nodes in sorted order.
        self.dl_color.clear();
        self.dl_color.resize(self.dl_nodes.len(), WHITE);
        for start in 0..self.dl_nodes.len() {
            if self.dl_color[start] != WHITE {
                continue;
            }
            self.dl_stack.clear();
            self.dl_path.clear();
            self.dl_stack.push((start, self.dl_ranges[start].0));
            self.dl_path.push(start);
            self.dl_color[start] = GRAY;
            while let Some(&mut (node, ref mut cursor)) = self.dl_stack.last_mut() {
                let cur = *cursor;
                *cursor += 1;
                if cur < self.dl_ranges[node].1 {
                    let target = self.dl_edges[cur].1;
                    let ti = self
                        .dl_nodes
                        .binary_search(&target)
                        .expect("edge target is a node");
                    match self.dl_color[ti] {
                        GRAY => {
                            let pos = self.dl_path.iter().position(|&p| p == ti).expect("on path");
                            return Some(
                                self.dl_path[pos..]
                                    .iter()
                                    .map(|&i| self.dl_nodes[i])
                                    .collect(),
                            );
                        }
                        WHITE => {
                            self.dl_color[ti] = GRAY;
                            self.dl_stack.push((ti, self.dl_ranges[ti].0));
                            self.dl_path.push(ti);
                        }
                        _ => {}
                    }
                } else {
                    self.dl_color[node] = BLACK;
                    self.dl_stack.pop();
                    self.dl_path.pop();
                }
            }
        }
        None
    }

    /// Picks the deadlock victim: the youngest member of a cycle, if any.
    pub fn deadlock_victim(&mut self) -> Option<TxnId> {
        self.find_deadlock()
            .map(|cycle| cycle.into_iter().max().expect("cycle is non-empty"))
    }

    /// Keys currently locked by `txn`.
    pub fn locks_of(&self, txn: TxnId) -> Vec<Key> {
        self.held
            .get(&txn)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Rebuilds the wait-for edge list by re-scanning the whole table (the
    /// pre-incremental algorithm). Test oracle for the maintained multiset.
    #[cfg(test)]
    fn full_rescan_edges(&self) -> Vec<(TxnId, TxnId)> {
        let mut edges = Vec::new();
        let states = self.dense.iter().chain(self.sparse.values());
        for state in states {
            for (wi, &(w, wm)) in state.waiters.iter().enumerate() {
                for &(h, hm) in &state.holders {
                    if h != w && !wm.compatible(hm) {
                        edges.push((w, h));
                    }
                }
                for &(w2, w2m) in state.waiters.iter().take(wi) {
                    if w2 != w && !wm.compatible(w2m) {
                        edges.push((w, w2));
                    }
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use LockMode::{Exclusive, Shared};

    fn t(ts: u64) -> TxnId {
        TxnId::new(ts, 0)
    }

    #[test]
    fn shared_locks_coexist() {
        let mut lm = LockManager::new(DeadlockPolicy::WoundWait);
        assert_eq!(lm.acquire(t(1), Key(0), Shared), Acquire::Granted);
        assert_eq!(lm.acquire(t(2), Key(0), Shared), Acquire::Granted);
        assert_eq!(lm.holders(Key(0)).len(), 2);
    }

    #[test]
    fn exclusive_excludes() {
        let mut lm = LockManager::new(DeadlockPolicy::Detect);
        assert_eq!(lm.acquire(t(1), Key(0), Exclusive), Acquire::Granted);
        assert_eq!(
            lm.acquire(t(2), Key(0), Exclusive),
            Acquire::Waiting { wounded: vec![] }
        );
        assert_eq!(
            lm.acquire(t(3), Key(0), Shared),
            Acquire::Waiting { wounded: vec![] }
        );
    }

    #[test]
    fn reentrant_and_upgrade() {
        let mut lm = LockManager::new(DeadlockPolicy::WoundWait);
        assert_eq!(lm.acquire(t(1), Key(0), Shared), Acquire::Granted);
        assert_eq!(lm.acquire(t(1), Key(0), Shared), Acquire::Granted);
        // Sole holder upgrades in place.
        assert_eq!(lm.acquire(t(1), Key(0), Exclusive), Acquire::Granted);
        assert_eq!(lm.acquire(t(1), Key(0), Shared), Acquire::Granted); // X covers S
        assert_eq!(lm.holders(Key(0)), vec![(t(1), Exclusive)]);
    }

    #[test]
    fn contended_upgrade_waits_at_front_and_wins_on_release() {
        let mut lm = LockManager::new(DeadlockPolicy::Detect);
        assert_eq!(lm.acquire(t(1), Key(0), Shared), Acquire::Granted);
        assert_eq!(lm.acquire(t(2), Key(0), Shared), Acquire::Granted);
        assert_eq!(
            lm.acquire(t(1), Key(0), Exclusive),
            Acquire::Waiting { wounded: vec![] }
        );
        let granted = lm.release_all(t(2));
        assert_eq!(granted, vec![(t(1), Key(0), Exclusive)]);
    }

    #[test]
    fn wound_wait_older_wounds_younger_holder() {
        let mut lm = LockManager::new(DeadlockPolicy::WoundWait);
        assert_eq!(lm.acquire(t(5), Key(0), Exclusive), Acquire::Granted);
        // Older t(2) arrives: wounds t(5) and waits.
        assert_eq!(
            lm.acquire(t(2), Key(0), Exclusive),
            Acquire::Waiting {
                wounded: vec![t(5)]
            }
        );
        // Caller aborts the victim; the older transaction is then granted.
        let granted = lm.release_all(t(5));
        assert_eq!(granted, vec![(t(2), Key(0), Exclusive)]);
    }

    #[test]
    fn wound_wait_younger_just_waits() {
        let mut lm = LockManager::new(DeadlockPolicy::WoundWait);
        assert_eq!(lm.acquire(t(2), Key(0), Exclusive), Acquire::Granted);
        assert_eq!(
            lm.acquire(t(5), Key(0), Exclusive),
            Acquire::Waiting { wounded: vec![] }
        );
    }

    #[test]
    fn release_grants_contiguous_shared_waiters() {
        let mut lm = LockManager::new(DeadlockPolicy::Detect);
        assert_eq!(lm.acquire(t(1), Key(0), Exclusive), Acquire::Granted);
        lm.acquire(t(2), Key(0), Shared);
        lm.acquire(t(3), Key(0), Shared);
        lm.acquire(t(4), Key(0), Exclusive);
        let granted = lm.release_all(t(1));
        assert_eq!(
            granted,
            vec![(t(2), Key(0), Shared), (t(3), Key(0), Shared)],
            "both shareds granted, exclusive still queued"
        );
        let granted = lm.release_all(t(2));
        assert!(granted.is_empty(), "t3 still holds shared");
        let granted = lm.release_all(t(3));
        assert_eq!(granted, vec![(t(4), Key(0), Exclusive)]);
    }

    #[test]
    fn deadlock_detected_and_youngest_is_victim() {
        let mut lm = LockManager::new(DeadlockPolicy::Detect);
        // t1 holds x0, t2 holds x1, then each requests the other's key.
        assert_eq!(lm.acquire(t(1), Key(0), Exclusive), Acquire::Granted);
        assert_eq!(lm.acquire(t(2), Key(1), Exclusive), Acquire::Granted);
        lm.acquire(t(1), Key(1), Exclusive);
        assert!(lm.find_deadlock().is_none(), "a single wait is no deadlock");
        lm.acquire(t(2), Key(0), Exclusive);
        let cycle = lm.find_deadlock().expect("cycle exists");
        assert_eq!(cycle.len(), 2);
        assert_eq!(lm.deadlock_victim(), Some(t(2)));
        // Aborting the victim clears the deadlock and unblocks t1.
        let granted = lm.release_all(t(2));
        assert_eq!(granted, vec![(t(1), Key(1), Exclusive)]);
        assert!(lm.find_deadlock().is_none());
    }

    #[test]
    fn wait_for_edges_include_queue_order() {
        let mut lm = LockManager::new(DeadlockPolicy::Detect);
        lm.acquire(t(1), Key(0), Exclusive);
        lm.acquire(t(2), Key(0), Exclusive);
        lm.acquire(t(3), Key(0), Exclusive);
        let edges = lm.wait_for_edges();
        assert!(edges.contains(&(t(2), t(1))));
        assert!(edges.contains(&(t(3), t(1))));
        assert!(edges.contains(&(t(3), t(2))), "queue order edge missing");
    }

    #[test]
    fn locks_of_reports_held_keys() {
        let mut lm = LockManager::new(DeadlockPolicy::WoundWait);
        lm.acquire(t(1), Key(3), Shared);
        lm.acquire(t(1), Key(1), Exclusive);
        assert_eq!(lm.locks_of(t(1)), vec![Key(1), Key(3)]);
        lm.release_all(t(1));
        assert!(lm.locks_of(t(1)).is_empty());
    }

    #[test]
    fn wound_wait_never_deadlocks_under_random_load() {
        // Pseudo-property: random conflicting acquisitions under wound-wait,
        // aborting wounded transactions, never produce a wait-for cycle
        // among live transactions.
        let mut seedgen = 11u64;
        for _ in 0..50 {
            seedgen = seedgen
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mut lm = LockManager::new(DeadlockPolicy::WoundWait);
            let mut dead: HashSet<TxnId> = HashSet::new();
            let mut s = seedgen;
            for step in 0..40u64 {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let txn = t(1 + (s >> 5) % 8);
                if dead.contains(&txn) {
                    continue;
                }
                let key = Key((s >> 20) % 4);
                let mode = if (s >> 40).is_multiple_of(2) {
                    Shared
                } else {
                    Exclusive
                };
                if let Acquire::Waiting { wounded } = lm.acquire(txn, key, mode) {
                    for v in wounded {
                        dead.insert(v);
                        lm.release_all(v);
                    }
                }
                let _ = step;
                assert!(
                    lm.find_deadlock().is_none(),
                    "wound-wait produced a deadlock (seed {seedgen})"
                );
            }
        }
    }

    #[test]
    fn incremental_edges_match_full_rescan_under_random_load() {
        // Drive both policies and both backings through random
        // acquire/release traffic; after every mutation the maintained
        // edge multiset must equal a from-scratch table scan.
        for policy in [DeadlockPolicy::WoundWait, DeadlockPolicy::Detect] {
            for ks in [Keyspace::dense(6), Keyspace::sparse(6)] {
                let mut lm = LockManager::with_keyspace(policy, ks);
                let mut s = 97u64;
                for _ in 0..400 {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let txn = t(1 + (s >> 7) % 6);
                    let key = Key((s >> 23) % 6);
                    let mode = if (s >> 41).is_multiple_of(2) {
                        Shared
                    } else {
                        Exclusive
                    };
                    if s.is_multiple_of(5) {
                        lm.release_all(txn);
                    } else {
                        let _ = lm.acquire(txn, key, mode);
                    }
                    assert_eq!(
                        lm.wait_for_edges(),
                        lm.full_rescan_edges(),
                        "policy {policy:?} ks {ks:?} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn dense_and_sparse_lock_tables_agree() {
        let mut d = LockManager::with_keyspace(DeadlockPolicy::WoundWait, Keyspace::dense(4));
        let mut sp = LockManager::with_keyspace(DeadlockPolicy::WoundWait, Keyspace::sparse(4));
        let mut s = 31u64;
        for _ in 0..300 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let txn = t(1 + (s >> 9) % 5);
            let key = Key((s >> 25) % 4);
            let mode = if (s >> 44).is_multiple_of(2) {
                Shared
            } else {
                Exclusive
            };
            if s.is_multiple_of(7) {
                assert_eq!(d.release_all(txn), sp.release_all(txn));
            } else {
                assert_eq!(d.acquire(txn, key, mode), sp.acquire(txn, key, mode));
            }
            assert_eq!(d.wait_for_edges(), sp.wait_for_edges());
            assert_eq!(d.find_deadlock(), sp.find_deadlock());
            assert_eq!(d.locks_of(txn), sp.locks_of(txn));
        }
    }

    #[test]
    fn edge_tracking_activates_on_existing_contention() {
        // The first graph query arrives after contention already exists:
        // the lazy rebuild must reconstruct every edge, and incremental
        // maintenance must take over from there.
        let mut lm = LockManager::new(DeadlockPolicy::Detect);
        lm.acquire(t(1), Key(0), Exclusive);
        lm.acquire(t(2), Key(0), Exclusive);
        lm.acquire(t(3), Key(1), Shared);
        lm.acquire(t(4), Key(1), Exclusive);
        assert_eq!(lm.wait_for_edges(), lm.full_rescan_edges());
        assert!(!lm.wait_for_edges().is_empty());
        lm.release_all(t(1));
        assert_eq!(lm.wait_for_edges(), lm.full_rescan_edges());
    }

    #[test]
    fn upgrade_in_place_refreshes_waiter_edges() {
        // t1 solely holds S; t2 queues for X (edge t2→t1 via S/X conflict);
        // t3 queues for S *behind t2* (queue-order edge t3→t2, and t3→t1
        // only once t1 upgrades to X).
        let mut lm = LockManager::new(DeadlockPolicy::Detect);
        assert_eq!(lm.acquire(t(1), Key(0), Shared), Acquire::Granted);
        lm.acquire(t(2), Key(0), Exclusive);
        lm.acquire(t(3), Key(0), Shared);
        let before = lm.wait_for_edges();
        assert!(before.contains(&(t(2), t(1))));
        assert!(!before.contains(&(t(3), t(1))), "S/S does not conflict yet");
        // Sole-holder upgrade in place: t1's holder mode becomes X, which
        // must flip the t3→t1 edge on.
        assert_eq!(lm.acquire(t(1), Key(0), Exclusive), Acquire::Granted);
        let after = lm.wait_for_edges();
        assert!(after.contains(&(t(3), t(1))), "upgrade edge not refreshed");
        assert_eq!(after, lm.full_rescan_edges());
    }
}
