//! Strict two-phase locking with shared/exclusive modes.
//!
//! Two deadlock-handling policies, compared by ablation A3:
//!
//! * [`DeadlockPolicy::WoundWait`] — prevention: an older requester
//!   *wounds* (forces the abort of) younger conflicting holders; a younger
//!   requester waits. Wait-for edges only ever point from younger to older
//!   transactions, so no cycle can form.
//! * [`DeadlockPolicy::Detect`] — detection: requests always wait; the
//!   caller periodically asks for a cycle in the wait-for graph and aborts
//!   the youngest member.
//!
//! The manager only *bookkeeps*; aborting a wounded or victim transaction
//! (undoing its writes, releasing its locks) is the caller's job, which is
//! exactly how the replication protocols drive it.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::item::{Key, TxnId};

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared (read) lock; compatible with other shared locks.
    Shared,
    /// Exclusive (write) lock; incompatible with everything.
    Exclusive,
}

impl LockMode {
    /// Lock compatibility matrix.
    pub fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }
}

/// Deadlock-handling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlockPolicy {
    /// Wound-wait prevention (default).
    #[default]
    WoundWait,
    /// Pure waiting; deadlocks resolved via [`LockManager::find_deadlock`].
    Detect,
}

/// Result of a lock request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Acquire {
    /// The lock was granted immediately.
    Granted,
    /// The requester must wait; under wound-wait, `wounded` lists younger
    /// holders the caller must abort to make progress.
    Waiting {
        /// Transactions wounded by this request (empty under `Detect`).
        wounded: Vec<TxnId>,
    },
}

#[derive(Debug, Default)]
struct LockState {
    holders: Vec<(TxnId, LockMode)>,
    waiters: VecDeque<(TxnId, LockMode)>,
}

impl LockState {
    fn holds(&self, txn: TxnId) -> Option<LockMode> {
        self.holders
            .iter()
            .find(|(t, _)| *t == txn)
            .map(|(_, m)| *m)
    }

    fn compatible_with_holders(&self, txn: TxnId, mode: LockMode) -> bool {
        self.holders
            .iter()
            .all(|(t, m)| *t == txn || m.compatible(mode))
    }
}

/// The lock table of one site.
///
/// # Examples
///
/// ```
/// use repl_db::{LockManager, DeadlockPolicy, LockMode, Acquire, Key, TxnId};
///
/// let mut lm = LockManager::new(DeadlockPolicy::WoundWait);
/// let t1 = TxnId::new(1, 0);
/// let t2 = TxnId::new(2, 0);
/// assert_eq!(lm.acquire(t1, Key(0), LockMode::Exclusive), Acquire::Granted);
/// // Younger t2 must wait, wounding nobody.
/// assert_eq!(lm.acquire(t2, Key(0), LockMode::Shared), Acquire::Waiting { wounded: vec![] });
/// let granted = lm.release_all(t1);
/// assert_eq!(granted, vec![(t2, Key(0), LockMode::Shared)]);
/// ```
#[derive(Debug, Default)]
pub struct LockManager {
    policy: DeadlockPolicy,
    table: HashMap<Key, LockState>,
    held: HashMap<TxnId, HashSet<Key>>,
}

impl LockManager {
    /// Creates an empty lock table.
    pub fn new(policy: DeadlockPolicy) -> Self {
        LockManager {
            policy,
            table: HashMap::new(),
            held: HashMap::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> DeadlockPolicy {
        self.policy
    }

    /// Requests `mode` on `key` for `txn`.
    ///
    /// Re-entrant: holding the same or a stronger mode returns `Granted`;
    /// a shared holder requesting exclusive performs an upgrade (granted if
    /// sole holder, otherwise queued with priority).
    pub fn acquire(&mut self, txn: TxnId, key: Key, mode: LockMode) -> Acquire {
        let state = self.table.entry(key).or_default();
        if let Some(held_mode) = state.holds(txn) {
            match (held_mode, mode) {
                (LockMode::Exclusive, _) | (LockMode::Shared, LockMode::Shared) => {
                    return Acquire::Granted;
                }
                (LockMode::Shared, LockMode::Exclusive) => {
                    if state.holders.len() == 1 {
                        state.holders[0].1 = LockMode::Exclusive;
                        return Acquire::Granted;
                    }
                    if !state.waiters.iter().any(|(t, _)| *t == txn) {
                        // Under detection, upgrades get priority (front of
                        // queue). Under wound-wait they must queue at the
                        // back: jumping ahead of an already-checked older
                        // waiter would re-introduce cycles.
                        if self.policy == DeadlockPolicy::Detect {
                            state.waiters.push_front((txn, LockMode::Exclusive));
                        } else {
                            state.waiters.push_back((txn, LockMode::Exclusive));
                        }
                    }
                    let wounded = self.wound(txn, key);
                    return Acquire::Waiting { wounded };
                }
            }
        }
        if state.compatible_with_holders(txn, mode) && state.waiters.is_empty() {
            state.holders.push((txn, mode));
            self.held.entry(txn).or_default().insert(key);
            return Acquire::Granted;
        }
        if !state.waiters.iter().any(|(t, _)| *t == txn) {
            state.waiters.push_back((txn, mode));
        }
        let wounded = self.wound(txn, key);
        Acquire::Waiting { wounded }
    }

    /// Under wound-wait, returns the younger conflicting transactions the
    /// requester wounds: holders, and waiters queued ahead of it (which
    /// would otherwise block it through queue order). The caller must
    /// abort them.
    fn wound(&mut self, requester: TxnId, key: Key) -> Vec<TxnId> {
        if self.policy != DeadlockPolicy::WoundWait {
            return Vec::new();
        }
        let Some(state) = self.table.get(&key) else {
            return Vec::new();
        };
        let (pos, mode) = match state
            .waiters
            .iter()
            .enumerate()
            .find(|(_, (t, _))| *t == requester)
        {
            Some((i, &(_, m))) => (i, m),
            None => (state.waiters.len(), LockMode::Exclusive),
        };
        let mut wounded: Vec<TxnId> = state
            .holders
            .iter()
            .filter(|(h, hm)| {
                *h != requester && !hm.compatible(mode) && requester.is_older_than(*h)
            })
            .map(|(h, _)| *h)
            .collect();
        for &(w, wm) in state.waiters.iter().take(pos) {
            if w != requester && !wm.compatible(mode) && requester.is_older_than(w) {
                wounded.push(w);
            }
        }
        wounded.sort_unstable();
        wounded.dedup();
        wounded
    }

    /// Releases every lock `txn` holds or waits for; returns the requests
    /// newly granted as a consequence, in grant order.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<(TxnId, Key, LockMode)> {
        let keys: Vec<Key> = self
            .held
            .remove(&txn)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default();
        let mut touched: Vec<Key> = keys;
        // Also purge pending waits (aborted while queued).
        let waiting_keys: Vec<Key> = self
            .table
            .iter()
            .filter(|(_, s)| s.waiters.iter().any(|(t, _)| *t == txn))
            .map(|(k, _)| *k)
            .collect();
        touched.extend(waiting_keys);
        touched.sort_unstable();
        touched.dedup();
        let mut granted = Vec::new();
        for key in touched {
            if let Some(state) = self.table.get_mut(&key) {
                state.holders.retain(|(t, _)| *t != txn);
                state.waiters.retain(|(t, _)| *t != txn);
                self.promote(key, &mut granted);
            }
        }
        granted
    }

    /// Promotes waiters on `key` that have become grantable.
    fn promote(&mut self, key: Key, granted: &mut Vec<(TxnId, Key, LockMode)>) {
        let Some(state) = self.table.get_mut(&key) else {
            return;
        };
        while let Some(&(txn, mode)) = state.waiters.front() {
            // Upgrade case: txn already holds shared and waits for exclusive.
            let others: Vec<&(TxnId, LockMode)> =
                state.holders.iter().filter(|(t, _)| *t != txn).collect();
            let compatible = others.iter().all(|(_, m)| m.compatible(mode));
            if !compatible {
                break;
            }
            state.waiters.pop_front();
            if let Some(h) = state.holders.iter_mut().find(|(t, _)| *t == txn) {
                h.1 = mode;
            } else {
                state.holders.push((txn, mode));
            }
            self.held.entry(txn).or_default().insert(key);
            granted.push((txn, key, mode));
            if mode == LockMode::Exclusive {
                break;
            }
        }
    }

    /// The current holders of `key`.
    pub fn holders(&self, key: Key) -> Vec<(TxnId, LockMode)> {
        self.table
            .get(&key)
            .map(|s| s.holders.clone())
            .unwrap_or_default()
    }

    /// The current waiters on `key`, in queue order.
    pub fn waiters(&self, key: Key) -> Vec<(TxnId, LockMode)> {
        self.table
            .get(&key)
            .map(|s| s.waiters.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Builds the wait-for graph: `waiter → holder` edges for conflicting
    /// pairs, plus `waiter → earlier incompatible waiter` (queue order).
    pub fn wait_for_edges(&self) -> Vec<(TxnId, TxnId)> {
        let mut edges = Vec::new();
        for state in self.table.values() {
            for (wi, &(w, wm)) in state.waiters.iter().enumerate() {
                for &(h, hm) in &state.holders {
                    if h != w && !wm.compatible(hm) {
                        edges.push((w, h));
                    }
                }
                for &(w2, w2m) in state.waiters.iter().take(wi) {
                    if w2 != w && !wm.compatible(w2m) {
                        edges.push((w, w2));
                    }
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// Finds a deadlock cycle in the wait-for graph, if any, returning its
    /// members. The conventional victim is the youngest member.
    pub fn find_deadlock(&self) -> Option<Vec<TxnId>> {
        let edges = self.wait_for_edges();
        let mut adj: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
        let mut nodes: HashSet<TxnId> = HashSet::new();
        for (a, b) in &edges {
            adj.entry(*a).or_default().push(*b);
            nodes.insert(*a);
            nodes.insert(*b);
        }
        // Iterative DFS with colors.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: HashMap<TxnId, Color> = nodes.iter().map(|&n| (n, Color::White)).collect();
        let mut sorted_nodes: Vec<TxnId> = nodes.iter().copied().collect();
        sorted_nodes.sort_unstable();
        for &start in &sorted_nodes {
            if color[&start] != Color::White {
                continue;
            }
            let mut stack: Vec<(TxnId, usize)> = vec![(start, 0)];
            let mut path: Vec<TxnId> = vec![start];
            color.insert(start, Color::Gray);
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let next = adj.get(&node).and_then(|v| v.get(*idx).copied());
                *idx += 1;
                match next {
                    Some(n) => match color[&n] {
                        Color::Gray => {
                            let pos = path.iter().position(|&p| p == n).expect("on path");
                            return Some(path[pos..].to_vec());
                        }
                        Color::White => {
                            color.insert(n, Color::Gray);
                            stack.push((n, 0));
                            path.push(n);
                        }
                        Color::Black => {}
                    },
                    None => {
                        color.insert(node, Color::Black);
                        stack.pop();
                        path.pop();
                    }
                }
            }
        }
        None
    }

    /// Picks the deadlock victim: the youngest member of a cycle, if any.
    pub fn deadlock_victim(&self) -> Option<TxnId> {
        self.find_deadlock()
            .map(|cycle| cycle.into_iter().max().expect("cycle is non-empty"))
    }

    /// Keys currently locked by `txn`.
    pub fn locks_of(&self, txn: TxnId) -> Vec<Key> {
        let mut v: Vec<Key> = self
            .held
            .get(&txn)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::{Exclusive, Shared};

    fn t(ts: u64) -> TxnId {
        TxnId::new(ts, 0)
    }

    #[test]
    fn shared_locks_coexist() {
        let mut lm = LockManager::new(DeadlockPolicy::WoundWait);
        assert_eq!(lm.acquire(t(1), Key(0), Shared), Acquire::Granted);
        assert_eq!(lm.acquire(t(2), Key(0), Shared), Acquire::Granted);
        assert_eq!(lm.holders(Key(0)).len(), 2);
    }

    #[test]
    fn exclusive_excludes() {
        let mut lm = LockManager::new(DeadlockPolicy::Detect);
        assert_eq!(lm.acquire(t(1), Key(0), Exclusive), Acquire::Granted);
        assert_eq!(
            lm.acquire(t(2), Key(0), Exclusive),
            Acquire::Waiting { wounded: vec![] }
        );
        assert_eq!(
            lm.acquire(t(3), Key(0), Shared),
            Acquire::Waiting { wounded: vec![] }
        );
    }

    #[test]
    fn reentrant_and_upgrade() {
        let mut lm = LockManager::new(DeadlockPolicy::WoundWait);
        assert_eq!(lm.acquire(t(1), Key(0), Shared), Acquire::Granted);
        assert_eq!(lm.acquire(t(1), Key(0), Shared), Acquire::Granted);
        // Sole holder upgrades in place.
        assert_eq!(lm.acquire(t(1), Key(0), Exclusive), Acquire::Granted);
        assert_eq!(lm.acquire(t(1), Key(0), Shared), Acquire::Granted); // X covers S
        assert_eq!(lm.holders(Key(0)), vec![(t(1), Exclusive)]);
    }

    #[test]
    fn contended_upgrade_waits_at_front_and_wins_on_release() {
        let mut lm = LockManager::new(DeadlockPolicy::Detect);
        assert_eq!(lm.acquire(t(1), Key(0), Shared), Acquire::Granted);
        assert_eq!(lm.acquire(t(2), Key(0), Shared), Acquire::Granted);
        assert_eq!(
            lm.acquire(t(1), Key(0), Exclusive),
            Acquire::Waiting { wounded: vec![] }
        );
        let granted = lm.release_all(t(2));
        assert_eq!(granted, vec![(t(1), Key(0), Exclusive)]);
    }

    #[test]
    fn wound_wait_older_wounds_younger_holder() {
        let mut lm = LockManager::new(DeadlockPolicy::WoundWait);
        assert_eq!(lm.acquire(t(5), Key(0), Exclusive), Acquire::Granted);
        // Older t(2) arrives: wounds t(5) and waits.
        assert_eq!(
            lm.acquire(t(2), Key(0), Exclusive),
            Acquire::Waiting {
                wounded: vec![t(5)]
            }
        );
        // Caller aborts the victim; the older transaction is then granted.
        let granted = lm.release_all(t(5));
        assert_eq!(granted, vec![(t(2), Key(0), Exclusive)]);
    }

    #[test]
    fn wound_wait_younger_just_waits() {
        let mut lm = LockManager::new(DeadlockPolicy::WoundWait);
        assert_eq!(lm.acquire(t(2), Key(0), Exclusive), Acquire::Granted);
        assert_eq!(
            lm.acquire(t(5), Key(0), Exclusive),
            Acquire::Waiting { wounded: vec![] }
        );
    }

    #[test]
    fn release_grants_contiguous_shared_waiters() {
        let mut lm = LockManager::new(DeadlockPolicy::Detect);
        assert_eq!(lm.acquire(t(1), Key(0), Exclusive), Acquire::Granted);
        lm.acquire(t(2), Key(0), Shared);
        lm.acquire(t(3), Key(0), Shared);
        lm.acquire(t(4), Key(0), Exclusive);
        let granted = lm.release_all(t(1));
        assert_eq!(
            granted,
            vec![(t(2), Key(0), Shared), (t(3), Key(0), Shared)],
            "both shareds granted, exclusive still queued"
        );
        let granted = lm.release_all(t(2));
        assert!(granted.is_empty(), "t3 still holds shared");
        let granted = lm.release_all(t(3));
        assert_eq!(granted, vec![(t(4), Key(0), Exclusive)]);
    }

    #[test]
    fn deadlock_detected_and_youngest_is_victim() {
        let mut lm = LockManager::new(DeadlockPolicy::Detect);
        // t1 holds x0, t2 holds x1, then each requests the other's key.
        assert_eq!(lm.acquire(t(1), Key(0), Exclusive), Acquire::Granted);
        assert_eq!(lm.acquire(t(2), Key(1), Exclusive), Acquire::Granted);
        lm.acquire(t(1), Key(1), Exclusive);
        assert!(lm.find_deadlock().is_none(), "a single wait is no deadlock");
        lm.acquire(t(2), Key(0), Exclusive);
        let cycle = lm.find_deadlock().expect("cycle exists");
        assert_eq!(cycle.len(), 2);
        assert_eq!(lm.deadlock_victim(), Some(t(2)));
        // Aborting the victim clears the deadlock and unblocks t1.
        let granted = lm.release_all(t(2));
        assert_eq!(granted, vec![(t(1), Key(1), Exclusive)]);
        assert!(lm.find_deadlock().is_none());
    }

    #[test]
    fn wait_for_edges_include_queue_order() {
        let mut lm = LockManager::new(DeadlockPolicy::Detect);
        lm.acquire(t(1), Key(0), Exclusive);
        lm.acquire(t(2), Key(0), Exclusive);
        lm.acquire(t(3), Key(0), Exclusive);
        let edges = lm.wait_for_edges();
        assert!(edges.contains(&(t(2), t(1))));
        assert!(edges.contains(&(t(3), t(1))));
        assert!(edges.contains(&(t(3), t(2))), "queue order edge missing");
    }

    #[test]
    fn locks_of_reports_held_keys() {
        let mut lm = LockManager::new(DeadlockPolicy::WoundWait);
        lm.acquire(t(1), Key(3), Shared);
        lm.acquire(t(1), Key(1), Exclusive);
        assert_eq!(lm.locks_of(t(1)), vec![Key(1), Key(3)]);
        lm.release_all(t(1));
        assert!(lm.locks_of(t(1)).is_empty());
    }

    #[test]
    fn wound_wait_never_deadlocks_under_random_load() {
        // Pseudo-property: random conflicting acquisitions under wound-wait,
        // aborting wounded transactions, never produce a wait-for cycle
        // among live transactions.
        let mut seedgen = 11u64;
        for _ in 0..50 {
            seedgen = seedgen
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mut lm = LockManager::new(DeadlockPolicy::WoundWait);
            let mut dead: HashSet<TxnId> = HashSet::new();
            let mut s = seedgen;
            for step in 0..40u64 {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let txn = t(1 + (s >> 5) % 8);
                if dead.contains(&txn) {
                    continue;
                }
                let key = Key((s >> 20) % 4);
                let mode = if (s >> 40).is_multiple_of(2) {
                    Shared
                } else {
                    Exclusive
                };
                if let Acquire::Waiting { wounded } = lm.acquire(txn, key, mode) {
                    for v in wounded {
                        dead.insert(v);
                        lm.release_all(v);
                    }
                }
                let _ = step;
                assert!(
                    lm.find_deadlock().is_none(),
                    "wound-wait produced a deadlock (seed {seedgen})"
                );
            }
        }
    }
}
