//! Redo log records: the "update" messages replication propagates.
//!
//! In the paper's passive and primary-copy techniques the executing site
//! does not ship the operation but the *changes* it produced — log
//! records. A [`WriteSet`] is exactly that: the after-images of one
//! transaction's writes, applicable at any replica without re-execution.

use crate::item::{Key, TxnId, Value};

/// One write's after-image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRecord {
    /// The written item.
    pub key: Key,
    /// The new value.
    pub value: Value,
    /// The version this write produced at the executing site.
    pub version: u64,
}

/// A transaction's full redo information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteSet {
    /// The writing transaction.
    pub txn: TxnId,
    /// After-images, sorted by key.
    pub writes: Vec<WriteRecord>,
}

impl WriteSet {
    /// An empty writeset (read-only transaction).
    pub fn empty(txn: TxnId) -> Self {
        WriteSet {
            txn,
            writes: Vec::new(),
        }
    }

    /// True if the transaction wrote nothing.
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// The written keys, in key order.
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.writes.iter().map(|w| w.key)
    }

    /// True if this writeset writes any key in `keys`.
    pub fn touches_any(&self, keys: &[Key]) -> bool {
        self.writes.iter().any(|w| keys.contains(&w.key))
    }

    /// Approximate wire size in bytes, for message accounting.
    pub fn wire_size(&self) -> usize {
        16 + self.writes.len() * 24
    }
}

/// An append-only redo log, as kept by each site for propagation and
/// recovery.
///
/// # Examples
///
/// ```
/// use repl_db::{RedoLog, WriteSet, TxnId};
///
/// let mut log = RedoLog::new();
/// log.append(WriteSet::empty(TxnId::new(1, 0)));
/// assert_eq!(log.len(), 1);
/// assert_eq!(log.since(0).count(), 1);
/// assert_eq!(log.since(1).count(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RedoLog {
    entries: Vec<WriteSet>,
}

impl RedoLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        RedoLog {
            entries: Vec::new(),
        }
    }

    /// Appends a committed transaction's writeset; returns its log index.
    pub fn append(&mut self, ws: WriteSet) -> usize {
        self.entries.push(ws);
        self.entries.len() - 1
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries from log index `from` onwards (for catch-up transfer).
    pub fn since(&self, from: usize) -> impl Iterator<Item = &WriteSet> {
        self.entries[from.min(self.entries.len())..].iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touches_any_detects_overlap() {
        let ws = WriteSet {
            txn: TxnId::new(1, 0),
            writes: vec![WriteRecord {
                key: Key(3),
                value: Value(1),
                version: 1,
            }],
        };
        assert!(ws.touches_any(&[Key(2), Key(3)]));
        assert!(!ws.touches_any(&[Key(0)]));
        assert!(!WriteSet::empty(TxnId::new(2, 0)).touches_any(&[Key(3)]));
    }

    #[test]
    fn log_since_returns_suffix() {
        let mut log = RedoLog::new();
        for i in 0..5 {
            log.append(WriteSet::empty(TxnId::new(i, 0)));
        }
        assert_eq!(log.since(2).count(), 3);
        assert_eq!(log.since(99).count(), 0);
        assert!(!log.is_empty());
    }

    #[test]
    fn keys_are_iterated_in_order() {
        let ws = WriteSet {
            txn: TxnId::new(1, 0),
            writes: vec![
                WriteRecord {
                    key: Key(1),
                    value: Value(0),
                    version: 1,
                },
                WriteRecord {
                    key: Key(4),
                    value: Value(0),
                    version: 1,
                },
            ],
        };
        assert_eq!(ws.keys().collect::<Vec<_>>(), vec![Key(1), Key(4)]);
        assert_eq!(ws.wire_size(), 16 + 48);
    }
}
