//! Redo log records: the "update" messages replication propagates.
//!
//! In the paper's passive and primary-copy techniques the executing site
//! does not ship the operation but the *changes* it produced — log
//! records. A [`WriteSet`] is exactly that: the after-images of one
//! transaction's writes, applicable at any replica without re-execution.

use crate::item::{Key, TxnId, Value};

/// One write's after-image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRecord {
    /// The written item.
    pub key: Key,
    /// The new value.
    pub value: Value,
    /// The version this write produced at the executing site.
    pub version: u64,
}

/// A transaction's full redo information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteSet {
    /// The writing transaction.
    pub txn: TxnId,
    /// After-images, sorted by key.
    pub writes: Vec<WriteRecord>,
}

impl WriteSet {
    /// An empty writeset (read-only transaction).
    pub fn empty(txn: TxnId) -> Self {
        WriteSet {
            txn,
            writes: Vec::new(),
        }
    }

    /// True if the transaction wrote nothing.
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// The written keys, in key order.
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.writes.iter().map(|w| w.key)
    }

    /// True if this writeset writes any key in `keys`.
    pub fn touches_any(&self, keys: &[Key]) -> bool {
        self.writes.iter().any(|w| keys.contains(&w.key))
    }

    /// Approximate wire size in bytes, for message accounting.
    pub fn wire_size(&self) -> usize {
        16 + self.writes.len() * 24
    }
}

/// Simulated latency of one stable-storage force (fsync), in virtual
/// ticks. Group commit's whole point is that a window of transactions
/// shares a single such charge. This is the *default*; runs can vary
/// it through `RunConfig::fsync_ticks` to model faster or slower
/// stable storage.
pub const FSYNC_TICKS: u64 = 120;

/// An append-only redo log, as kept by each site for propagation and
/// recovery — with **group commit**.
///
/// [`RedoLog::append`] durably commits one record and pays one force
/// ([`RedoLog::fsyncs`] counts them). Under group commit the caller
/// stages records with [`RedoLog::stage`] and later calls
/// [`RedoLog::flush_group`]: every staged record reaches the log in
/// stage order, but the whole group shares a *single* fsync charge —
/// the classic WAL group-commit amortization. The log contents are
/// identical either way; only the force count (and the latency the
/// caller models with [`FSYNC_TICKS`]) differ.
///
/// # Examples
///
/// ```
/// use repl_db::{RedoLog, WriteSet, TxnId};
///
/// let mut log = RedoLog::new();
/// log.append(WriteSet::empty(TxnId::new(1, 0)));
/// assert_eq!(log.len(), 1);
/// assert_eq!(log.since(0).count(), 1);
/// assert_eq!(log.since(1).count(), 0);
/// assert_eq!(log.fsyncs(), 1);
///
/// // Group commit: three records, one force.
/// for i in 2..5 {
///     log.stage(WriteSet::empty(TxnId::new(i, 0)));
/// }
/// assert_eq!(log.flush_group(), Some((1, 3)));
/// assert_eq!(log.len(), 4);
/// assert_eq!(log.fsyncs(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RedoLog {
    entries: Vec<WriteSet>,
    staged: Vec<WriteSet>,
    fsyncs: u64,
    /// Logical index of the first retained entry (0 until truncation).
    base: u64,
    /// Maximum number of entries retained (`None` = keep everything).
    retention: Option<usize>,
}

impl RedoLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        RedoLog {
            entries: Vec::new(),
            staged: Vec::new(),
            fsyncs: 0,
            base: 0,
            retention: None,
        }
    }

    /// Caps the number of retained entries (builder form). Once the log
    /// exceeds `max_entries`, the oldest entries are truncated away; a
    /// recovering replica whose position falls before the truncation
    /// point can no longer be served a log suffix and needs a snapshot
    /// (see [`crate::Transfer`]).
    pub fn with_retention(mut self, max_entries: usize) -> Self {
        self.retention = Some(max_entries.max(1));
        self
    }

    /// Caps the number of retained entries in place (`None` = unbounded).
    pub fn set_retention(&mut self, max_entries: Option<usize>) {
        self.retention = max_entries.map(|n| n.max(1));
    }

    /// Logical index of the oldest entry still retained. A suffix
    /// request from any position `>= first_retained()` can be served
    /// from the log; earlier positions require a snapshot.
    pub fn first_retained(&self) -> u64 {
        self.base
    }

    /// True if the log still holds every entry from logical index
    /// `from` onwards.
    pub fn has_suffix(&self, from: u64) -> bool {
        from >= self.base
    }

    fn enforce_retention(&mut self) {
        if let Some(max) = self.retention {
            if self.entries.len() > max {
                let drop = self.entries.len() - max;
                self.entries.drain(..drop);
                self.base += drop as u64;
            }
        }
    }

    /// Appends a committed transaction's writeset; returns its log index.
    /// Pays one stable-storage force.
    pub fn append(&mut self, ws: WriteSet) -> usize {
        self.entries.push(ws);
        self.fsyncs += 1;
        let idx = self.base as usize + self.entries.len() - 1;
        self.enforce_retention();
        idx
    }

    /// Stages a record for the next group commit (no force yet; the
    /// record is not durable and not visible to [`RedoLog::since`]
    /// until [`RedoLog::flush_group`]).
    pub fn stage(&mut self, ws: WriteSet) {
        self.staged.push(ws);
    }

    /// Number of records staged for the next group commit.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Commits every staged record with a single force. Returns the
    /// logical log index of the first record and the group size, or
    /// `None` if nothing was staged (no force is paid then).
    pub fn flush_group(&mut self) -> Option<(usize, usize)> {
        if self.staged.is_empty() {
            return None;
        }
        let start = self.base as usize + self.entries.len();
        let count = self.staged.len();
        self.entries.append(&mut self.staged);
        self.fsyncs += 1;
        self.enforce_retention();
        Some((start, count))
    }

    /// Number of stable-storage forces paid so far.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Logical number of entries ever committed (truncated entries
    /// still count: logical indices are stable across truncation).
    pub fn len(&self) -> usize {
        self.base as usize + self.entries.len()
    }

    /// True if the log never committed anything.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Loses the entire log to a volume failure: committed entries,
    /// staged records and logical position are all gone, as if the log
    /// file never existed. The retention policy and the lifetime fsync
    /// count (forces already paid) are kept. A restore typically
    /// follows with [`RedoLog::skip_to`] at the durable watermark.
    pub fn wipe(&mut self) {
        self.entries.clear();
        self.staged.clear();
        self.base = 0;
    }

    /// Fast-forwards the log to logical position `index`, retaining
    /// nothing below it — used after installing a snapshot stamped with
    /// the donor's watermark, where the skipped entries were never
    /// seen. No-op if the log already reaches `index`.
    pub fn skip_to(&mut self, index: u64) {
        if index as usize > self.len() {
            self.entries.clear();
            self.staged.clear();
            self.base = index;
        }
    }

    /// Entries from *logical* log index `from` onwards (for catch-up
    /// transfer). Positions before [`RedoLog::first_retained`] cannot be
    /// served; callers should check [`RedoLog::has_suffix`] first —
    /// `since` silently starts at the truncation point otherwise.
    pub fn since(&self, from: usize) -> impl Iterator<Item = &WriteSet> {
        let phys = from.saturating_sub(self.base as usize);
        self.entries[phys.min(self.entries.len())..].iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touches_any_detects_overlap() {
        let ws = WriteSet {
            txn: TxnId::new(1, 0),
            writes: vec![WriteRecord {
                key: Key(3),
                value: Value(1),
                version: 1,
            }],
        };
        assert!(ws.touches_any(&[Key(2), Key(3)]));
        assert!(!ws.touches_any(&[Key(0)]));
        assert!(!WriteSet::empty(TxnId::new(2, 0)).touches_any(&[Key(3)]));
    }

    #[test]
    fn group_commit_shares_one_fsync() {
        let mut log = RedoLog::new();
        log.append(WriteSet::empty(TxnId::new(0, 0)));
        assert_eq!(log.fsyncs(), 1);
        for i in 1..6 {
            log.stage(WriteSet::empty(TxnId::new(i, 0)));
        }
        assert_eq!(log.staged_len(), 5);
        // Staged records are not yet durable.
        assert_eq!(log.len(), 1);
        assert_eq!(log.since(0).count(), 1);
        assert_eq!(log.flush_group(), Some((1, 5)));
        assert_eq!(log.staged_len(), 0);
        assert_eq!(log.len(), 6);
        assert_eq!(log.fsyncs(), 2, "five records, one shared force");
        // Order preserved: entries appear in stage order.
        let txns: Vec<u64> = log.since(0).map(|w| w.txn.ts).collect();
        assert_eq!(txns, vec![0, 1, 2, 3, 4, 5]);
        // Empty flush pays nothing.
        assert_eq!(log.flush_group(), None);
        assert_eq!(log.fsyncs(), 2);
    }

    #[test]
    fn log_since_returns_suffix() {
        let mut log = RedoLog::new();
        for i in 0..5 {
            log.append(WriteSet::empty(TxnId::new(i, 0)));
        }
        assert_eq!(log.since(2).count(), 3);
        assert_eq!(log.since(99).count(), 0);
        assert!(!log.is_empty());
    }

    #[test]
    fn retention_truncates_but_keeps_logical_indices() {
        let mut log = RedoLog::new().with_retention(3);
        for i in 0..10 {
            assert_eq!(log.append(WriteSet::empty(TxnId::new(i, 0))), i as usize);
        }
        assert_eq!(log.len(), 10, "logical length counts truncated entries");
        assert_eq!(log.first_retained(), 7);
        assert!(log.has_suffix(7));
        assert!(log.has_suffix(9));
        assert!(!log.has_suffix(6));
        // since() is logical: asking from 8 skips entry 7.
        let txns: Vec<u64> = log.since(8).map(|w| w.txn.ts).collect();
        assert_eq!(txns, vec![8, 9]);
        assert_eq!(log.since(10).count(), 0);
        // Group commit respects retention too.
        for i in 10..14 {
            log.stage(WriteSet::empty(TxnId::new(i, 0)));
        }
        assert_eq!(log.flush_group(), Some((10, 4)));
        assert_eq!(log.len(), 14);
        assert_eq!(log.first_retained(), 11);
    }

    #[test]
    fn wipe_empties_log_but_keeps_paid_forces() {
        let mut log = RedoLog::new().with_retention(8);
        for i in 0..5 {
            log.append(WriteSet::empty(TxnId::new(i, 0)));
        }
        log.stage(WriteSet::empty(TxnId::new(9, 0)));
        log.wipe();
        assert!(log.is_empty());
        assert_eq!(log.staged_len(), 0);
        assert_eq!(log.first_retained(), 0);
        assert_eq!(log.fsyncs(), 5, "forces already paid are history");
        // A restore fast-forwards to the durable watermark.
        log.skip_to(3);
        assert_eq!(log.len(), 3);
        assert!(log.has_suffix(3));
        assert!(!log.has_suffix(2));
    }

    #[test]
    fn keys_are_iterated_in_order() {
        let ws = WriteSet {
            txn: TxnId::new(1, 0),
            writes: vec![
                WriteRecord {
                    key: Key(1),
                    value: Value(0),
                    version: 1,
                },
                WriteRecord {
                    key: Key(4),
                    value: Value(0),
                    version: 1,
                },
            ],
        };
        assert_eq!(ws.keys().collect::<Vec<_>>(), vec![Key(1), Key(4)]);
        assert_eq!(ws.wire_size(), 16 + 48);
    }
}
