//! # repl-db — the database kernel under the replication reproduction
//!
//! The database-side substrate of *Understanding Replication in Databases
//! and Distributed Systems* (Wiesmann et al., ICDCS 2000):
//!
//! * [`Store`] — one site's versioned physical copies; [`ShadowStore`]
//!   for optimistic (certification-based) execution,
//! * [`LockManager`] — strict two-phase locking with wound-wait
//!   prevention or wait-for-graph deadlock detection,
//! * [`TxnManager`] — begin/read/write/commit/abort with undo,
//! * [`WriteSet`]/[`RedoLog`] — the log records replication propagates,
//! * [`TpcCoordinator`]/[`TpcParticipant`] — two-phase commit,
//! * [`Certifier`] — the deterministic certification test,
//! * [`Transfer`]/[`RecoveryTracker`] — crash-recovery state transfer
//!   (log-suffix vs snapshot) and MTTR accounting,
//! * [`DurableLog`] — the off-node durable log tier (sealed frames,
//!   durable watermark, disaster wipe/restore),
//! * [`ReplicatedHistory`] — one-copy-serializability checking.
//!
//! The crate is pure data structures and state machines: no I/O, no
//! simulator dependency. The replication protocols in `repl-core` embed
//! these pieces inside simulated server actors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod certify;
mod durable;
pub mod hash;
mod history;
mod item;
mod locks;
mod log;
mod recovery;
mod store;
mod twopc;
mod txn;

pub use certify::{Certification, Certifier};
pub use durable::{DurableFrame, DurableLog, DurableRestore};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use history::{HistOp, ReplicatedHistory, SerializabilityViolation};
pub use item::{AccessKind, Key, Keyspace, TxnId, Value};
pub use locks::{Acquire, DeadlockPolicy, LockManager, LockMode};
pub use log::{RedoLog, WriteRecord, WriteSet, FSYNC_TICKS};
pub use recovery::{RecoveryTracker, Transfer, TransferStrategy};
pub use store::{ShadowStore, Store, Versioned};
pub use twopc::{TpcCoordState, TpcCoordinator, TpcDecision, TpcMsg, TpcPartState, TpcParticipant};
pub use txn::{TxnManager, UnknownTxn};
