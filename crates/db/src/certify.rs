//! The deterministic certification test of certification-based replication
//! (paper Section 5.4.2).
//!
//! A transaction executes optimistically on shadow copies at its delegate
//! site, then its read set (versions read) and writeset are ABCAST to all
//! sites. Every site runs the *same* test in the *same* total order, so
//! all sites reach the same commit/abort verdict without an extra round
//! of coordination: commit iff no transaction that certified earlier (and
//! after the candidate's snapshot) wrote any item the candidate read.

use std::collections::HashMap;

use crate::item::{Key, TxnId};
use crate::log::WriteSet;

/// The verdict of the certification test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Certification {
    /// No conflicting concurrent writer certified first: commit.
    Commit,
    /// A read item was overwritten by a concurrently certified
    /// transaction: abort.
    Abort {
        /// The item whose version check failed.
        key: Key,
        /// The transaction that overwrote it.
        by: TxnId,
    },
}

impl Certification {
    /// True if the verdict is commit.
    pub fn is_commit(self) -> bool {
        matches!(self, Certification::Commit)
    }
}

/// The per-site certifier: tracks, for every item, the version installed
/// by the last certified writer.
///
/// All sites feed it the same ABCAST-ordered stream, so its verdicts are
/// identical everywhere — this is what lets the technique skip the
/// Agreement Coordination phase.
///
/// # Examples
///
/// ```
/// use repl_db::{Certifier, Certification, WriteSet, WriteRecord, Key, Value, TxnId};
///
/// let mut c = Certifier::new();
/// let t1 = TxnId::new(1, 0);
/// let ws1 = WriteSet { txn: t1, writes: vec![WriteRecord { key: Key(0), value: Value(1), version: 1 }] };
/// // t1 read x0 at version 0 and wrote it: certifies.
/// assert!(c.certify(&[(Key(0), 0)], &ws1).is_commit());
/// // t2 also read version 0 of x0 (stale after t1): aborts.
/// let t2 = TxnId::new(2, 1);
/// let ws2 = WriteSet { txn: t2, writes: vec![WriteRecord { key: Key(0), value: Value(2), version: 1 }] };
/// assert!(!c.certify(&[(Key(0), 0)], &ws2).is_commit());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Certifier {
    /// Last certified version per item, and its writer.
    installed: HashMap<Key, (u64, TxnId)>,
    committed: u64,
    aborted: u64,
}

impl Certifier {
    /// Creates an empty certifier (every item at initial version 0).
    pub fn new() -> Self {
        Certifier::default()
    }

    /// Certifies a transaction given the versions it read and the writes
    /// it wants to install. On commit, the writeset's versions are
    /// recorded as installed.
    pub fn certify(&mut self, read_set: &[(Key, u64)], ws: &WriteSet) -> Certification {
        for &(key, version_read) in read_set {
            if let Some(&(installed, by)) = self.installed.get(&key) {
                if installed > version_read {
                    self.aborted += 1;
                    return Certification::Abort { key, by };
                }
            }
        }
        for w in &ws.writes {
            let entry = self.installed.entry(w.key).or_insert((0, ws.txn));
            entry.0 += 1;
            entry.1 = ws.txn;
        }
        self.committed += 1;
        Certification::Commit
    }

    /// `(committed, aborted)` counts.
    pub fn stats(&self) -> (u64, u64) {
        (self.committed, self.aborted)
    }

    /// The certified version of `key` (0 if never written).
    pub fn version_of(&self, key: Key) -> u64 {
        self.installed.get(&key).map_or(0, |&(v, _)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Value;
    use crate::log::WriteRecord;

    fn ws(txn: TxnId, keys: &[u64]) -> WriteSet {
        WriteSet {
            txn,
            writes: keys
                .iter()
                .map(|&k| WriteRecord {
                    key: Key(k),
                    value: Value(1),
                    version: 0,
                })
                .collect(),
        }
    }

    fn t(ts: u64) -> TxnId {
        TxnId::new(ts, 0)
    }

    #[test]
    fn disjoint_transactions_all_commit() {
        let mut c = Certifier::new();
        assert!(c.certify(&[(Key(0), 0)], &ws(t(1), &[0])).is_commit());
        assert!(c.certify(&[(Key(1), 0)], &ws(t(2), &[1])).is_commit());
        assert!(c.certify(&[(Key(2), 0)], &ws(t(3), &[2])).is_commit());
        assert_eq!(c.stats(), (3, 0));
    }

    #[test]
    fn stale_read_aborts_with_culprit() {
        let mut c = Certifier::new();
        assert!(c.certify(&[], &ws(t(1), &[5])).is_commit());
        match c.certify(&[(Key(5), 0)], &ws(t(2), &[5])) {
            Certification::Abort { key, by } => {
                assert_eq!(key, Key(5));
                assert_eq!(by, t(1));
            }
            Certification::Commit => panic!("stale read must abort"),
        }
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn fresh_read_after_write_commits() {
        let mut c = Certifier::new();
        assert!(c.certify(&[], &ws(t(1), &[0])).is_commit());
        assert_eq!(c.version_of(Key(0)), 1);
        // t2 read version 1 — the current one — so it certifies.
        assert!(c.certify(&[(Key(0), 1)], &ws(t(2), &[0])).is_commit());
        assert_eq!(c.version_of(Key(0)), 2);
    }

    #[test]
    fn blind_writes_never_abort() {
        let mut c = Certifier::new();
        for ts in 1..=10 {
            assert!(c.certify(&[], &ws(t(ts), &[0])).is_commit());
        }
        assert_eq!(c.version_of(Key(0)), 10);
    }

    #[test]
    fn aborted_transaction_installs_nothing() {
        let mut c = Certifier::new();
        assert!(c.certify(&[], &ws(t(1), &[0])).is_commit());
        assert!(!c.certify(&[(Key(0), 0)], &ws(t(2), &[7])).is_commit());
        assert_eq!(c.version_of(Key(7)), 0, "abort must not install writes");
    }
}
