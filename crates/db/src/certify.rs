//! The deterministic certification test of certification-based replication
//! (paper Section 5.4.2).
//!
//! A transaction executes optimistically on shadow copies at its delegate
//! site, then its read set (versions read) and writeset are ABCAST to all
//! sites. Every site runs the *same* test in the *same* total order, so
//! all sites reach the same commit/abort verdict without an extra round
//! of coordination: commit iff no transaction that certified earlier (and
//! after the candidate's snapshot) wrote any item the candidate read.

use crate::hash::FxHashMap;
use crate::item::{Key, Keyspace, TxnId};
use crate::log::WriteSet;

/// The verdict of the certification test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Certification {
    /// No conflicting concurrent writer certified first: commit.
    Commit,
    /// A read item was overwritten by a concurrently certified
    /// transaction: abort.
    Abort {
        /// The item whose version check failed.
        key: Key,
        /// The transaction that overwrote it.
        by: TxnId,
    },
}

impl Certification {
    /// True if the verdict is commit.
    pub fn is_commit(self) -> bool {
        matches!(self, Certification::Commit)
    }
}

/// An installed-version record: certified version and its writer. The
/// initial state (version 0, placeholder writer) is what an absent map
/// entry used to mean, so the dense path can pre-materialize it.
type Installed = (u64, TxnId);

const INITIAL: Installed = (0, TxnId { ts: 0, site: 0 });

/// The per-site certifier: tracks, for every item, the version installed
/// by the last certified writer.
///
/// All sites feed it the same ABCAST-ordered stream, so its verdicts are
/// identical everywhere — this is what lets the technique skip the
/// Agreement Coordination phase.
///
/// Built with a bounded [`Keyspace`], the version table is a dense `Vec`
/// indexed by `Key`; otherwise an Fx-hashed map (with dense-range
/// overflow handled transparently).
///
/// # Examples
///
/// ```
/// use repl_db::{Certifier, Certification, WriteSet, WriteRecord, Key, Value, TxnId};
///
/// let mut c = Certifier::new();
/// let t1 = TxnId::new(1, 0);
/// let ws1 = WriteSet { txn: t1, writes: vec![WriteRecord { key: Key(0), value: Value(1), version: 1 }] };
/// // t1 read x0 at version 0 and wrote it: certifies.
/// assert!(c.certify(&[(Key(0), 0)], &ws1).is_commit());
/// // t2 also read version 0 of x0 (stale after t1): aborts.
/// let t2 = TxnId::new(2, 1);
/// let ws2 = WriteSet { txn: t2, writes: vec![WriteRecord { key: Key(0), value: Value(2), version: 1 }] };
/// assert!(!c.certify(&[(Key(0), 0)], &ws2).is_commit());
/// ```
#[derive(Debug, Clone)]
pub struct Certifier {
    /// Dense installed-version table: slot `i` is `Key(i)`. Empty when
    /// sparse.
    dense: Vec<Installed>,
    /// Sparse installed-version table; on the dense path only serves keys
    /// outside the declared range.
    sparse: FxHashMap<Key, Installed>,
    committed: u64,
    aborted: u64,
}

impl Default for Certifier {
    fn default() -> Self {
        Certifier::new()
    }
}

impl Certifier {
    /// Creates an empty certifier (every item at initial version 0) over
    /// an open (sparse) keyspace.
    pub fn new() -> Self {
        Certifier::with_keyspace(Keyspace::sparse(0))
    }

    /// Creates a certifier backed for `ks`.
    pub fn with_keyspace(ks: Keyspace) -> Self {
        Certifier {
            dense: if ks.dense {
                vec![INITIAL; ks.items as usize]
            } else {
                Vec::new()
            },
            sparse: FxHashMap::default(),
            committed: 0,
            aborted: 0,
        }
    }

    #[inline(always)]
    fn get(&self, key: Key) -> Option<Installed> {
        match self.dense.get(key.0 as usize) {
            Some(&e) => Some(e),
            None => self.sparse.get(&key).copied(),
        }
    }

    /// Certifies a transaction given the versions it read and the writes
    /// it wants to install. On commit, the writeset's versions are
    /// recorded as installed.
    pub fn certify(&mut self, read_set: &[(Key, u64)], ws: &WriteSet) -> Certification {
        for &(key, version_read) in read_set {
            if let Some((installed, by)) = self.get(key) {
                if installed > version_read {
                    self.aborted += 1;
                    return Certification::Abort { key, by };
                }
            }
        }
        for w in &ws.writes {
            let entry: &mut Installed = if (w.key.0 as usize) < self.dense.len() {
                &mut self.dense[w.key.0 as usize]
            } else {
                self.sparse.entry(w.key).or_insert((0, ws.txn))
            };
            entry.0 += 1;
            entry.1 = ws.txn;
        }
        self.committed += 1;
        Certification::Commit
    }

    /// Rebuilds one installed-version entry after a volume restore. The
    /// store's per-key versions track the certifier's counters
    /// one-for-one (both advance exactly once per certified write), so
    /// feeding a restored store's `(key, version, writer)` triples into
    /// a fresh certifier reproduces the certification state at the
    /// restore point — verdicts for the replayed stream suffix then
    /// match what the rest of the group already decided.
    pub fn restore_version(&mut self, key: Key, version: u64, by: TxnId) {
        if version == 0 {
            return;
        }
        let entry = if (key.0 as usize) < self.dense.len() {
            &mut self.dense[key.0 as usize]
        } else {
            self.sparse.entry(key).or_insert(INITIAL)
        };
        *entry = (version, by);
    }

    /// `(committed, aborted)` counts.
    pub fn stats(&self) -> (u64, u64) {
        (self.committed, self.aborted)
    }

    /// The certified version of `key` (0 if never written).
    pub fn version_of(&self, key: Key) -> u64 {
        self.get(key).map_or(0, |(v, _)| v)
    }

    /// Number of keys with an explicitly tracked installed version
    /// (sparse entries plus written dense slots).
    pub fn tracked_keys(&self) -> usize {
        self.dense
            .iter()
            .filter(|e| e.1 != INITIAL.1 || e.0 != 0)
            .count()
            + self.sparse.len()
    }

    /// Garbage-collects sparse installed-version entries last written by a
    /// transaction older than `watermark`. Returns the number evicted.
    ///
    /// # Caller contract
    ///
    /// Evicting a key resets its tracked version to 0, so a later
    /// re-insert restarts the version counter. That is only sound if the
    /// caller guarantees no in-flight transaction can still present a
    /// read of the evicted key: `watermark` must be a low-water mark
    /// below which every transaction has already certified or aborted
    /// *and* whose read sets have drained from the ABCAST stream. The
    /// replication protocols in this reproduction keep certifier versions
    /// in lockstep with store versions and therefore never call this on
    /// the hot path; it exists for long-running sparse deployments where
    /// the installed table would otherwise grow without bound. On the
    /// dense path the table is fixed-size and this is a no-op.
    pub fn gc(&mut self, watermark: TxnId) -> usize {
        let before = self.sparse.len();
        self.sparse
            .retain(|_, &mut (_, by)| !by.is_older_than(watermark));
        before - self.sparse.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Value;
    use crate::log::WriteRecord;

    fn ws(txn: TxnId, keys: &[u64]) -> WriteSet {
        WriteSet {
            txn,
            writes: keys
                .iter()
                .map(|&k| WriteRecord {
                    key: Key(k),
                    value: Value(1),
                    version: 0,
                })
                .collect(),
        }
    }

    fn t(ts: u64) -> TxnId {
        TxnId::new(ts, 0)
    }

    #[test]
    fn disjoint_transactions_all_commit() {
        let mut c = Certifier::new();
        assert!(c.certify(&[(Key(0), 0)], &ws(t(1), &[0])).is_commit());
        assert!(c.certify(&[(Key(1), 0)], &ws(t(2), &[1])).is_commit());
        assert!(c.certify(&[(Key(2), 0)], &ws(t(3), &[2])).is_commit());
        assert_eq!(c.stats(), (3, 0));
    }

    #[test]
    fn stale_read_aborts_with_culprit() {
        let mut c = Certifier::new();
        assert!(c.certify(&[], &ws(t(1), &[5])).is_commit());
        match c.certify(&[(Key(5), 0)], &ws(t(2), &[5])) {
            Certification::Abort { key, by } => {
                assert_eq!(key, Key(5));
                assert_eq!(by, t(1));
            }
            Certification::Commit => panic!("stale read must abort"),
        }
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn fresh_read_after_write_commits() {
        let mut c = Certifier::new();
        assert!(c.certify(&[], &ws(t(1), &[0])).is_commit());
        assert_eq!(c.version_of(Key(0)), 1);
        // t2 read version 1 — the current one — so it certifies.
        assert!(c.certify(&[(Key(0), 1)], &ws(t(2), &[0])).is_commit());
        assert_eq!(c.version_of(Key(0)), 2);
    }

    #[test]
    fn blind_writes_never_abort() {
        let mut c = Certifier::new();
        for ts in 1..=10 {
            assert!(c.certify(&[], &ws(t(ts), &[0])).is_commit());
        }
        assert_eq!(c.version_of(Key(0)), 10);
    }

    #[test]
    fn aborted_transaction_installs_nothing() {
        let mut c = Certifier::new();
        assert!(c.certify(&[], &ws(t(1), &[0])).is_commit());
        assert!(!c.certify(&[(Key(0), 0)], &ws(t(2), &[7])).is_commit());
        assert_eq!(c.version_of(Key(7)), 0, "abort must not install writes");
    }

    #[test]
    fn dense_and_sparse_certifiers_agree() {
        let mut d = Certifier::with_keyspace(Keyspace::dense(8));
        let mut sp = Certifier::with_keyspace(Keyspace::sparse(8));
        let mut s = 5u64;
        for ts in 1..=200u64 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = (s >> 13) % 8;
            let rv = (s >> 33) % 3;
            let w = ws(t(ts), &[k, (k + 1) % 8]);
            let reads = [(Key(k), rv)];
            assert_eq!(d.certify(&reads, &w), sp.certify(&reads, &w), "ts {ts}");
        }
        assert_eq!(d.stats(), sp.stats());
        for k in 0..8 {
            assert_eq!(d.version_of(Key(k)), sp.version_of(Key(k)));
        }
    }

    #[test]
    fn restored_certifier_reproduces_verdicts() {
        let mut live = Certifier::with_keyspace(Keyspace::dense(4));
        assert!(live.certify(&[], &ws(t(1), &[0])).is_commit());
        assert!(live.certify(&[(Key(0), 1)], &ws(t(2), &[0, 1])).is_commit());
        // Rebuild from (key, version, writer) triples as a restored
        // store would supply them.
        let mut rebuilt = Certifier::with_keyspace(Keyspace::dense(4));
        rebuilt.restore_version(Key(0), 2, t(2));
        rebuilt.restore_version(Key(1), 1, t(2));
        rebuilt.restore_version(Key(2), 0, t(2)); // version 0: no-op
        assert_eq!(rebuilt.version_of(Key(2)), 0);
        // The two certifiers agree on every subsequent verdict.
        let stale = (Key(0), 1);
        assert_eq!(
            live.certify(&[stale], &ws(t(3), &[2])),
            rebuilt.certify(&[stale], &ws(t(3), &[2]))
        );
        let fresh = (Key(0), 2);
        assert_eq!(
            live.certify(&[fresh], &ws(t(4), &[3])),
            rebuilt.certify(&[fresh], &ws(t(4), &[3]))
        );
    }

    #[test]
    fn gc_evicts_old_sparse_entries_only() {
        let mut c = Certifier::new();
        assert!(c.certify(&[], &ws(t(1), &[0])).is_commit());
        assert!(c.certify(&[], &ws(t(9), &[1])).is_commit());
        assert_eq!(c.tracked_keys(), 2);
        // Watermark t(5): only the entry written by t(1) is evicted.
        assert_eq!(c.gc(t(5)), 1);
        assert_eq!(c.tracked_keys(), 1);
        assert_eq!(c.version_of(Key(0)), 0, "evicted entry reads as initial");
        assert_eq!(c.version_of(Key(1)), 1, "recent entry survives");
    }

    #[test]
    fn gc_is_a_no_op_on_the_dense_path() {
        let mut c = Certifier::with_keyspace(Keyspace::dense(4));
        assert!(c.certify(&[], &ws(t(1), &[0])).is_commit());
        assert_eq!(c.gc(t(100)), 0);
        assert_eq!(c.version_of(Key(0)), 1);
    }
}
