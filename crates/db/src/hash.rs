//! Fast, non-cryptographic hashing for kernel-internal maps.
//!
//! The std `HashMap` defaults to SipHash-1-3, which buys HashDoS
//! resistance the kernel does not need: every map in this crate is
//! keyed by values the simulation itself generates (`Key`, `TxnId`,
//! site ids), never by attacker-controlled input. [`FxHasher`]
//! implements the rustc-hash word-at-a-time multiply-rotate scheme,
//! which is several times faster on the small fixed-width keys the
//! kernel uses.
//!
//! Determinism note: switching hashers changes *iteration order* of a
//! `HashMap`. The crate-wide invariant (enforced by the CI
//! unordered-iteration lint) is that any iteration whose order can
//! reach observable behaviour is sorted first, so the hasher choice is
//! behaviour-neutral. New code must keep it that way.

use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier from rustc-hash (FxHash): a randomly generated odd
/// 64-bit constant with a roughly even bit distribution.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast word-at-a-time hasher (the rustc-hash / FxHash algorithm).
///
/// Not HashDoS-resistant; use only for keys generated inside the
/// simulation (which is all the kernel ever hashes).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline(always)]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline(always)]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the byte slice; the tail is padded into
        // one final word. All kernel key types hash via the fixed-width
        // paths below, so this path only serves derived impls that mix
        // raw bytes (none today, kept for completeness).
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_word(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline(always)]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }

    #[inline(always)]
    fn write_u16(&mut self, n: u16) {
        self.add_word(n as u64);
    }

    #[inline(always)]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }

    #[inline(always)]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline(always)]
    fn write_u128(&mut self, n: u128) {
        self.add_word(n as u64);
        self.add_word((n >> 64) as u64);
    }

    #[inline(always)]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]. Iteration order is unspecified —
/// sort before any order-observable use (`// sorted-below` lint).
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`]. Same ordering caveat as
/// [`FxHashMap`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn identical_inputs_hash_identically() {
        let b = FxBuildHasher::default();
        assert_eq!(b.hash_one(42u64), b.hash_one(42u64));
        assert_eq!(b.hash_one((1u32, 7u64)), b.hash_one((1u32, 7u64)));
    }

    #[test]
    fn different_inputs_disperse() {
        let b = FxBuildHasher::default();
        // Sequential keys (the common workload shape) must not collide
        // into a handful of buckets.
        let hashes: std::collections::HashSet<u64> = (0u64..1024).map(|k| b.hash_one(k)).collect();
        assert_eq!(hashes.len(), 1024);
    }

    #[test]
    fn byte_slice_path_matches_padding_rules() {
        // 8-byte aligned and ragged tails must both be deterministic.
        let b = FxBuildHasher::default();
        assert_eq!(b.hash_one("abcdefgh"), b.hash_one("abcdefgh"));
        assert_ne!(b.hash_one("abcdefgh"), b.hash_one("abcdefgi"));
        assert_ne!(b.hash_one("abc"), b.hash_one("abd"));
    }

    #[test]
    fn fx_map_and_set_are_usable() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m.get(&1), Some(&10));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
