//! The transaction manager: begin / read / write / commit / abort with
//! undo via before-images.
//!
//! Writes are applied to the store in place (isolation is the lock
//! manager's job under strict 2PL); abort restores the exact prior state.
//! Commit returns the transaction's [`WriteSet`] — the redo records the
//! replication protocols propagate.

use std::collections::{BTreeMap, HashMap};

use crate::hash::FxHashMap;

use crate::item::{Key, TxnId, Value};
use crate::log::{WriteRecord, WriteSet};
use crate::store::{Store, Versioned};

/// Bookkeeping for one in-flight transaction.
#[derive(Debug, Clone)]
struct ActiveTxn {
    /// First-touch before-images, for undo.
    before: FxHashMap<Key, Versioned>,
    /// After-images in key order.
    writes: BTreeMap<Key, (Value, u64)>,
    /// Versions read, in read order.
    reads: Vec<(Key, u64)>,
}

/// Error returned when referring to a transaction the manager does not
/// know (never begun, or already finished).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownTxn(pub TxnId);

impl std::fmt::Display for UnknownTxn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown transaction {}", self.0)
    }
}

impl std::error::Error for UnknownTxn {}

/// Per-site transaction manager.
///
/// # Examples
///
/// ```
/// use repl_db::{TxnManager, Store, Key, Value, TxnId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut store = Store::with_items(2, Value(0));
/// let mut tm = TxnManager::new();
/// let t = TxnId::new(1, 0);
/// tm.begin(t);
/// tm.write(&mut store, t, Key(0), Value(7))?;
/// let ws = tm.commit(t)?;
/// assert_eq!(ws.writes.len(), 1);
/// assert_eq!(store.read(Key(0)).expect("exists").value, Value(7));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct TxnManager {
    active: FxHashMap<TxnId, ActiveTxn>,
    committed: u64,
    aborted: u64,
}

impl TxnManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        TxnManager::default()
    }

    /// Starts a transaction. Idempotent for an already-active id.
    pub fn begin(&mut self, id: TxnId) {
        self.active.entry(id).or_insert_with(|| ActiveTxn {
            before: FxHashMap::default(),
            writes: BTreeMap::new(),
            reads: Vec::new(),
        });
    }

    /// True if `id` is in flight.
    pub fn is_active(&self, id: TxnId) -> bool {
        self.active.contains_key(&id)
    }

    /// Number of in-flight transactions.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Committed / aborted counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.committed, self.aborted)
    }

    /// First-touch before-images of every in-flight transaction. Lets a
    /// recovery donor reconstruct fully-committed state from a store
    /// that contains tentative in-place writes: patching these images
    /// over a [`Store::snapshot`] rolls the tentative writes back.
    /// Should two active transactions have touched the same key (locks
    /// normally prevent it), the older image wins.
    pub fn before_images(&self) -> HashMap<Key, Versioned> {
        let mut images: HashMap<Key, Versioned> = HashMap::new();
        for txn in self.active.values() {
            for (&k, &v) in &txn.before {
                match images.get(&k) {
                    Some(prev) if prev.version <= v.version => {}
                    _ => {
                        images.insert(k, v);
                    }
                }
            }
        }
        images
    }

    /// Reads `key` within `id`, recording the version for the read set.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownTxn`] if `id` is not active.
    pub fn read(
        &mut self,
        store: &Store,
        id: TxnId,
        key: Key,
    ) -> Result<Option<Versioned>, UnknownTxn> {
        let txn = self.active.get_mut(&id).ok_or(UnknownTxn(id))?;
        let v = store.read(key);
        if let Some(v) = v {
            txn.reads.push((key, v.version));
        }
        Ok(v)
    }

    /// Writes `key := value` within `id`, keeping the before-image for undo.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownTxn`] if `id` is not active.
    pub fn write(
        &mut self,
        store: &mut Store,
        id: TxnId,
        key: Key,
        value: Value,
    ) -> Result<Versioned, UnknownTxn> {
        let txn = self.active.get_mut(&id).ok_or(UnknownTxn(id))?;
        txn.before
            .entry(key)
            .or_insert_with(|| store.read(key).unwrap_or(Versioned::initial(Value(0))));
        let after = store.write(key, value, id);
        txn.writes.insert(key, (value, after.version));
        Ok(after)
    }

    /// The versions `id` has read so far.
    pub fn read_set(&self, id: TxnId) -> Result<&[(Key, u64)], UnknownTxn> {
        self.active
            .get(&id)
            .map(|t| t.reads.as_slice())
            .ok_or(UnknownTxn(id))
    }

    /// Commits `id`, returning its writeset.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownTxn`] if `id` is not active.
    pub fn commit(&mut self, id: TxnId) -> Result<WriteSet, UnknownTxn> {
        let txn = self.active.remove(&id).ok_or(UnknownTxn(id))?;
        self.committed += 1;
        Ok(WriteSet {
            txn: id,
            writes: txn
                .writes
                .into_iter()
                .map(|(key, (value, version))| WriteRecord {
                    key,
                    value,
                    version,
                })
                .collect(),
        })
    }

    /// Aborts `id`, restoring every written item to its before-image.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownTxn`] if `id` is not active.
    pub fn abort(&mut self, store: &mut Store, id: TxnId) -> Result<(), UnknownTxn> {
        let txn = self.active.remove(&id).ok_or(UnknownTxn(id))?;
        self.aborted += 1;
        for (key, prior) in txn.before {
            store.restore(key, prior);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ts: u64) -> TxnId {
        TxnId::new(ts, 0)
    }

    #[test]
    fn commit_produces_sorted_writeset() {
        let mut store = Store::with_items(5, Value(0));
        let mut tm = TxnManager::new();
        tm.begin(t(1));
        tm.write(&mut store, t(1), Key(4), Value(40))
            .expect("active");
        tm.write(&mut store, t(1), Key(2), Value(20))
            .expect("active");
        let ws = tm.commit(t(1)).expect("active");
        assert_eq!(ws.keys().collect::<Vec<_>>(), vec![Key(2), Key(4)]);
        assert_eq!(tm.stats(), (1, 0));
    }

    #[test]
    fn abort_restores_all_before_images() {
        let mut store = Store::with_items(2, Value(10));
        let fp = store.fingerprint();
        let mut tm = TxnManager::new();
        tm.begin(t(1));
        tm.write(&mut store, t(1), Key(0), Value(1))
            .expect("active");
        tm.write(&mut store, t(1), Key(0), Value(2))
            .expect("active");
        tm.write(&mut store, t(1), Key(1), Value(3))
            .expect("active");
        assert_ne!(store.fingerprint(), fp);
        tm.abort(&mut store, t(1)).expect("active");
        assert_eq!(store.fingerprint(), fp, "abort must be a perfect undo");
        assert_eq!(tm.stats(), (0, 1));
    }

    #[test]
    fn double_write_keeps_first_before_image() {
        let mut store = Store::with_items(1, Value(5));
        let mut tm = TxnManager::new();
        tm.begin(t(1));
        tm.write(&mut store, t(1), Key(0), Value(6))
            .expect("active");
        tm.write(&mut store, t(1), Key(0), Value(7))
            .expect("active");
        tm.abort(&mut store, t(1)).expect("active");
        assert_eq!(store.read(Key(0)).expect("exists").value, Value(5));
        assert_eq!(store.read(Key(0)).expect("exists").version, 0);
    }

    #[test]
    fn read_set_records_versions_in_order() {
        let mut store = Store::with_items(2, Value(0));
        store.write(Key(1), Value(9), t(0)); // version 1
        let mut tm = TxnManager::new();
        tm.begin(t(2));
        tm.read(&store, t(2), Key(1)).expect("active");
        tm.read(&store, t(2), Key(0)).expect("active");
        assert_eq!(
            tm.read_set(t(2)).expect("active"),
            &[(Key(1), 1), (Key(0), 0)]
        );
    }

    #[test]
    fn unknown_txn_errors() {
        let mut store = Store::new();
        let mut tm = TxnManager::new();
        assert_eq!(tm.commit(t(9)), Err(UnknownTxn(t(9))));
        assert_eq!(tm.abort(&mut store, t(9)), Err(UnknownTxn(t(9))));
        assert!(tm.read(&store, t(9), Key(0)).is_err());
        assert_eq!(UnknownTxn(t(9)).to_string(), "unknown transaction t9.0");
    }

    #[test]
    fn begin_is_idempotent() {
        let mut tm = TxnManager::new();
        tm.begin(t(1));
        tm.begin(t(1));
        assert_eq!(tm.active_count(), 1);
        assert!(tm.is_active(t(1)));
    }
}
