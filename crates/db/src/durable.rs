//! The durable log tier: sealed redo frames shipped off-node, surviving
//! total loss of a site's local volume.
//!
//! The local [`RedoLog`](crate::RedoLog) is fsync-durable but lives on a
//! losable volume. A [`DurableLog`] is the off-node copy: an uploader
//! seals the writesets committed since the last seal into a
//! [`DurableFrame`] and ships it to an object store. The tier's caller
//! computes each frame's `durable_at` from its upload model; the
//! `DurableLog` itself is pure bookkeeping (this crate has no simulator
//! dependency).
//!
//! Three moments matter:
//!
//! * **Seal** — a frame's entries are on the wire but *not yet durable*.
//! * **Wipe** — a disaster at time `t` keeps exactly the frames with
//!   `durable_at <= t`; in-flight frames (and their entries) are lost
//!   and returned to the caller so acknowledged-but-lost commits can be
//!   claimed in the data-loss accounting.
//! * **Restore** — the surviving tier state is packaged through the
//!   existing [`Transfer`] machinery as a *durable snapshot* (the
//!   compacted frame prefix) plus a *durable suffix* (the still-framed
//!   entries), mirroring the snapshot/log-suffix split of peer recovery.
//!
//! Old durable frames are periodically folded into an internal backup
//! [`Store`] ("compaction"), so restores don't replay the whole history;
//! the fold keeps each folded transaction's id and key set so a restored
//! site can rebuild its execution history for the 1SR oracle.

use crate::item::{Key, Keyspace, TxnId, Value};
use crate::log::WriteSet;
use crate::recovery::Transfer;
use crate::store::Store;

/// One sealed upload unit: a contiguous run of redo entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableFrame {
    /// Logical index of the frame's first entry.
    pub start: u64,
    /// Number of entries in the frame.
    pub count: u64,
    /// Serialized size shipped to the object store.
    pub bytes: u64,
    /// Virtual tick at which the frame was sealed and the upload began.
    pub sealed_at: u64,
    /// Virtual tick at which the object store holds the frame durably.
    pub durable_at: u64,
    /// The owning protocol's stream/log position *after* this frame's
    /// entries — where a restored replica resumes if this frame is the
    /// durable high-water mark.
    pub token: u64,
}

/// Everything needed to rebuild a wiped volume from the durable tier.
#[derive(Debug, Clone)]
pub struct DurableRestore {
    /// The compacted durable prefix, as a snapshot transfer (`None`
    /// when nothing was folded yet).
    pub snapshot: Option<Transfer>,
    /// The still-framed durable entries, as a log-suffix transfer
    /// (`None` when no frames survive uncompacted).
    pub suffix: Option<Transfer>,
    /// `(txn, keys)` of every transaction folded into the snapshot, in
    /// commit order — replayed into the restored site's execution
    /// history, which the snapshot transfer alone cannot rebuild.
    pub folded_history: Vec<(TxnId, Vec<Key>)>,
    /// Logical log index after installing both transfers.
    pub high: u64,
    /// Protocol stream/log position to resume from.
    pub token: u64,
    /// Total transfer size, for restore-time accounting.
    pub bytes: u64,
}

/// The off-node durable copy of one site's redo stream.
///
/// # Examples
///
/// ```
/// use repl_db::{DurableLog, Keyspace, WriteSet, TxnId};
///
/// let mut tier = DurableLog::new(Keyspace::dense(8));
/// // Seal one frame at t=100 that becomes durable at t=600.
/// tier.seal(100, 600, 1, vec![WriteSet::empty(TxnId::new(1, 0))]);
/// assert_eq!(tier.durable_high(599), 0, "still in flight");
/// assert_eq!(tier.durable_high(600), 1);
/// // A disaster at t=500 loses the in-flight frame.
/// let lost = tier.wipe(500);
/// assert_eq!(lost.len(), 1);
/// assert_eq!(tier.restore().high, 0);
/// ```
#[derive(Debug, Clone)]
pub struct DurableLog {
    /// Sealed, not-yet-compacted frames, oldest first.
    frames: Vec<DurableFrame>,
    /// The frames' entries; `entries[0]` is logical index `snap_high`.
    entries: Vec<WriteSet>,
    /// Compacted durable prefix.
    snap: Store,
    /// Logical entries folded into `snap`.
    snap_high: u64,
    /// Stream token at the `snap_high` boundary.
    snap_token: u64,
    /// History-rebuild records for folded entries, in commit order.
    folded: Vec<(TxnId, Vec<Key>)>,
    /// Fold durable frames once more than this many entries are retained.
    compact_after: usize,
    /// Frames sealed over the tier's lifetime (survives wipes).
    frames_sealed: u64,
}

/// Fold threshold balancing restore cost (long suffix replay) against
/// fold work; tuned nothing — any positive value is correct.
const DEFAULT_COMPACT_AFTER: usize = 64;

impl DurableLog {
    /// Creates an empty tier for a site whose store uses `keyspace`.
    pub fn new(keyspace: Keyspace) -> Self {
        DurableLog {
            frames: Vec::new(),
            entries: Vec::new(),
            snap: Store::with_keyspace(keyspace, Value(0)),
            snap_high: 0,
            snap_token: 0,
            folded: Vec::new(),
            compact_after: DEFAULT_COMPACT_AFTER,
            frames_sealed: 0,
        }
    }

    /// Overrides the compaction threshold (builder form).
    pub fn with_compaction(mut self, after_entries: usize) -> Self {
        self.compact_after = after_entries.max(1);
        self
    }

    /// Seals `entries` into a frame shipped at `sealed_at` and durable
    /// at `durable_at`, stamped with the protocol position `token`
    /// reached after them. Returns the frame's serialized size (0 for an
    /// empty seal, which is a no-op: no frame, no upload).
    ///
    /// `durable_at` values must be non-decreasing across seals (uploads
    /// are FIFO); the durable watermark relies on it.
    pub fn seal(
        &mut self,
        sealed_at: u64,
        durable_at: u64,
        token: u64,
        entries: Vec<WriteSet>,
    ) -> u64 {
        if entries.is_empty() {
            return 0;
        }
        debug_assert!(
            self.frames.last().is_none_or(|f| f.durable_at <= durable_at),
            "durable tier uploads must be FIFO"
        );
        let bytes: u64 = entries.iter().map(|w| w.wire_size() as u64).sum();
        self.frames.push(DurableFrame {
            start: self.snap_high + self.entries.len() as u64,
            count: entries.len() as u64,
            bytes,
            sealed_at,
            durable_at,
            token,
        });
        self.entries.extend(entries);
        self.frames_sealed += 1;
        self.compact(sealed_at);
        bytes
    }

    /// Folds frames already durable at `now` into the backup store while
    /// more than `compact_after` entries are retained.
    fn compact(&mut self, now: u64) {
        while self.entries.len() > self.compact_after
            && self.frames.first().is_some_and(|f| f.durable_at <= now)
        {
            let frame = self.frames.remove(0);
            for ws in self.entries.drain(..frame.count as usize) {
                self.folded
                    .push((ws.txn, ws.writes.iter().map(|w| w.key).collect()));
                self.snap.apply_writeset(&ws);
            }
            self.snap_high += frame.count;
            self.snap_token = frame.token;
        }
    }

    /// Highest logical log index durable at `now`: every entry below it
    /// survives a disaster at `now`.
    pub fn durable_high(&self, now: u64) -> u64 {
        let mut high = self.snap_high;
        for f in &self.frames {
            if f.durable_at > now {
                break;
            }
            high = f.start + f.count;
        }
        high
    }

    /// A disaster at `now`: in-flight frames (durable after `now`) are
    /// dropped, and their entries — acknowledged locally but never made
    /// durable — are returned so the caller can claim them as the
    /// data-loss window. The durable prefix is untouched.
    pub fn wipe(&mut self, now: u64) -> Vec<WriteSet> {
        let keep = self
            .frames
            .iter()
            .take_while(|f| f.durable_at <= now)
            .count();
        let kept_entries: usize = self.frames[..keep].iter().map(|f| f.count as usize).sum();
        self.frames.truncate(keep);
        self.entries.split_off(kept_entries)
    }

    /// Packages the surviving tier state for a restore (see
    /// [`DurableRestore`]). Callable any time; after a [`wipe`]
    /// (Self::wipe) it reflects exactly the durable prefix.
    pub fn restore(&self) -> DurableRestore {
        let snapshot = if self.snap_high > 0 {
            Some(Transfer::snapshot(&self.snap, self.snap_high))
        } else {
            None
        };
        let suffix = if self.entries.is_empty() {
            None
        } else {
            Some(Transfer {
                strategy: crate::recovery::TransferStrategy::LogSuffix,
                start: self.snap_high,
                entries: self.entries.clone(),
                snapshot: Vec::new(),
                high: self.snap_high + self.entries.len() as u64,
            })
        };
        let high = self.snap_high + self.entries.len() as u64;
        let token = self
            .frames
            .last()
            .map_or(self.snap_token, |f| f.token);
        let bytes = snapshot.as_ref().map_or(0, |t| t.wire_size() as u64)
            + suffix.as_ref().map_or(0, |t| t.wire_size() as u64);
        DurableRestore {
            snapshot,
            suffix,
            folded_history: self.folded.clone(),
            high,
            token,
            bytes,
        }
    }

    /// Logical entries the tier has ever sealed (including folded ones).
    pub fn len(&self) -> u64 {
        self.snap_high + self.entries.len() as u64
    }

    /// True if nothing was ever sealed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Frames currently retained (sealed, not yet folded).
    pub fn retained_frames(&self) -> usize {
        self.frames.len()
    }

    /// Frames sealed over the tier's lifetime.
    pub fn frames_sealed(&self) -> u64 {
        self.frames_sealed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::WriteRecord;
    use crate::recovery::TransferStrategy;

    fn ws(ts: u64, key: u64, value: i64, version: u64) -> WriteSet {
        WriteSet {
            txn: TxnId::new(ts, 0),
            writes: vec![WriteRecord {
                key: Key(key),
                value: Value(value),
                version,
            }],
        }
    }

    #[test]
    fn watermark_follows_durable_frames() {
        let mut tier = DurableLog::new(Keyspace::dense(4));
        tier.seal(10, 100, 1, vec![ws(1, 0, 5, 1)]);
        tier.seal(20, 200, 2, vec![ws(2, 1, 6, 1)]);
        assert_eq!(tier.durable_high(99), 0);
        assert_eq!(tier.durable_high(100), 1);
        assert_eq!(tier.durable_high(200), 2);
        assert_eq!(tier.len(), 2);
        assert_eq!(tier.frames_sealed(), 2);
    }

    #[test]
    fn empty_seal_is_free() {
        let mut tier = DurableLog::new(Keyspace::dense(4));
        assert_eq!(tier.seal(10, 10, 0, vec![]), 0);
        assert!(tier.is_empty());
        assert_eq!(tier.frames_sealed(), 0);
    }

    #[test]
    fn wipe_loses_exactly_the_inflight_suffix() {
        let mut tier = DurableLog::new(Keyspace::dense(4));
        tier.seal(10, 50, 1, vec![ws(1, 0, 5, 1)]);
        tier.seal(20, 300, 2, vec![ws(2, 1, 6, 1), ws(3, 2, 7, 1)]);
        let lost = tier.wipe(100);
        assert_eq!(lost.len(), 2, "second frame was in flight");
        assert_eq!(lost[0].txn, TxnId::new(2, 0));
        assert_eq!(tier.len(), 1);
        let r = tier.restore();
        assert_eq!(r.high, 1);
        assert_eq!(r.token, 1);
        assert!(r.snapshot.is_none());
        assert_eq!(r.suffix.as_ref().map(|t| t.entries.len()), Some(1));
    }

    #[test]
    fn wipe_at_zero_lag_loses_nothing() {
        let mut tier = DurableLog::new(Keyspace::dense(4));
        tier.seal(10, 10, 1, vec![ws(1, 0, 5, 1)]);
        tier.seal(20, 20, 2, vec![ws(2, 1, 6, 1)]);
        assert!(tier.wipe(20).is_empty());
        assert_eq!(tier.restore().high, 2);
    }

    #[test]
    fn compaction_folds_durable_prefix_and_restore_uses_both_strategies() {
        let mut tier = DurableLog::new(Keyspace::dense(8)).with_compaction(2);
        for i in 0..6u64 {
            tier.seal(i * 10, i * 10, i + 1, vec![ws(i + 1, i % 8, i as i64, 1)]);
        }
        assert!(tier.snap_high > 0, "old frames folded");
        assert!(tier.retained_frames() < 6);
        let r = tier.restore();
        let snap = r.snapshot.expect("compacted prefix");
        assert_eq!(snap.strategy, TransferStrategy::Snapshot);
        assert_eq!(snap.high, tier.snap_high);
        let suffix = r.suffix.expect("retained frames");
        assert_eq!(suffix.strategy, TransferStrategy::LogSuffix);
        assert_eq!(suffix.start, tier.snap_high);
        assert_eq!(r.high, 6);
        assert_eq!(r.token, 6);
        assert_eq!(r.folded_history.len(), tier.snap_high as usize);
        assert!(r.bytes > 0);

        // Applying snapshot then suffix reproduces the full state.
        let mut restored = Store::with_keyspace(Keyspace::dense(8), Value(0));
        snap.apply(&mut restored);
        suffix.apply(&mut restored);
        let mut replayed = Store::with_keyspace(Keyspace::dense(8), Value(0));
        for i in 0..6u64 {
            replayed.apply_writeset(&ws(i + 1, i % 8, i as i64, 1));
        }
        assert_eq!(restored.fingerprint(), replayed.fingerprint());
    }

    #[test]
    fn compaction_never_folds_inflight_frames() {
        let mut tier = DurableLog::new(Keyspace::dense(4)).with_compaction(1);
        // Durable far in the future: nothing may fold, so a wipe can
        // still return these entries as lost.
        for i in 0..5u64 {
            tier.seal(i, 1_000_000, i + 1, vec![ws(i + 1, 0, i as i64, 1)]);
        }
        assert_eq!(tier.retained_frames(), 5);
        assert_eq!(tier.wipe(10).len(), 5);
        assert!(tier.restore().snapshot.is_none());
    }
}
