//! Property-based tests for the database kernel: lock-table invariants,
//! wound-wait acyclicity, undo exactness, certification determinism, and
//! serialization-graph witnesses.

use proptest::prelude::*;

use repl_db::{
    AccessKind, Acquire, Certifier, DeadlockPolicy, Key, Keyspace, LockManager, LockMode,
    ReplicatedHistory, Store, TxnId, TxnManager, Value, WriteRecord, WriteSet,
};

#[derive(Debug, Clone, Copy)]
enum LockOp {
    Acquire { txn: u8, key: u8, exclusive: bool },
    Release { txn: u8 },
}

fn lock_ops() -> impl Strategy<Value = Vec<LockOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..6, 0u8..4, any::<bool>()).prop_map(|(txn, key, exclusive)| LockOp::Acquire {
                txn,
                key,
                exclusive
            }),
            (0u8..6).prop_map(|txn| LockOp::Release { txn }),
        ],
        1..60,
    )
}

fn t(n: u8) -> TxnId {
    TxnId::new(n as u64 + 1, 0)
}

/// No two incompatible holders may coexist on any key, ever.
fn check_holder_compatibility(lm: &LockManager) -> Result<(), String> {
    for key in 0..4 {
        let holders = lm.holders(Key(key));
        for (i, &(t1, m1)) in holders.iter().enumerate() {
            for &(t2, m2) in &holders[i + 1..] {
                if t1 != t2 && !m1.compatible(m2) {
                    return Err(format!(
                        "incompatible holders on x{key}: {t1}/{m1:?} and {t2}/{m2:?}"
                    ));
                }
            }
        }
    }
    Ok(())
}

#[derive(Default)]
struct RefLockState {
    holders: Vec<(TxnId, LockMode)>,
    waiters: std::collections::VecDeque<(TxnId, LockMode)>,
}

/// A deliberately naive reference model of the lock manager: a plain
/// `HashMap` table, no held/waiting indexes, no cached wait-for edges —
/// `release_all` finds touched keys by scanning the whole table. The
/// dense Vec-backed kernel must make bit-identical grant, wound and
/// promotion decisions.
struct RefLockManager {
    policy: DeadlockPolicy,
    table: std::collections::HashMap<Key, RefLockState>,
}

impl RefLockManager {
    fn new(policy: DeadlockPolicy) -> Self {
        RefLockManager {
            policy,
            table: std::collections::HashMap::new(),
        }
    }

    fn acquire(&mut self, txn: TxnId, key: Key, mode: LockMode) -> Acquire {
        let policy = self.policy;
        let state = self.table.entry(key).or_default();
        if let Some(&(_, held)) = state.holders.iter().find(|&&(t, _)| t == txn) {
            match (held, mode) {
                (LockMode::Exclusive, _) | (LockMode::Shared, LockMode::Shared) => {
                    return Acquire::Granted;
                }
                (LockMode::Shared, LockMode::Exclusive) => {
                    if state.holders.len() == 1 {
                        state.holders[0].1 = LockMode::Exclusive;
                        return Acquire::Granted;
                    }
                    if !state.waiters.iter().any(|&(t, _)| t == txn) {
                        // Upgrades get queue priority under detection; under
                        // wound-wait they queue at the back.
                        if policy == DeadlockPolicy::Detect {
                            state.waiters.push_front((txn, LockMode::Exclusive));
                        } else {
                            state.waiters.push_back((txn, LockMode::Exclusive));
                        }
                    }
                    return Acquire::Waiting {
                        wounded: Self::wound(policy, state, txn),
                    };
                }
            }
        }
        if state
            .holders
            .iter()
            .all(|&(t, m)| t == txn || m.compatible(mode))
            && state.waiters.is_empty()
        {
            state.holders.push((txn, mode));
            return Acquire::Granted;
        }
        if !state.waiters.iter().any(|&(t, _)| t == txn) {
            state.waiters.push_back((txn, mode));
        }
        Acquire::Waiting {
            wounded: Self::wound(policy, state, txn),
        }
    }

    fn wound(policy: DeadlockPolicy, state: &RefLockState, requester: TxnId) -> Vec<TxnId> {
        if policy != DeadlockPolicy::WoundWait {
            return Vec::new();
        }
        let (pos, mode) = match state
            .waiters
            .iter()
            .enumerate()
            .find(|(_, (t, _))| *t == requester)
        {
            Some((i, &(_, m))) => (i, m),
            None => (state.waiters.len(), LockMode::Exclusive),
        };
        let mut wounded: Vec<TxnId> = state
            .holders
            .iter()
            .filter(|&&(h, hm)| {
                h != requester && !hm.compatible(mode) && requester.is_older_than(h)
            })
            .map(|&(h, _)| h)
            .collect();
        for &(w, wm) in state.waiters.iter().take(pos) {
            if w != requester && !wm.compatible(mode) && requester.is_older_than(w) {
                wounded.push(w);
            }
        }
        wounded.sort_unstable();
        wounded.dedup();
        wounded
    }

    fn release_all(&mut self, txn: TxnId) -> Vec<(TxnId, Key, LockMode)> {
        let mut touched: Vec<Key> = self
            .table
            .iter()
            .filter(|(_, s)| {
                s.holders.iter().any(|&(t, _)| t == txn) || s.waiters.iter().any(|&(t, _)| t == txn)
            })
            .map(|(&k, _)| k)
            .collect();
        touched.sort_unstable();
        let mut granted = Vec::new();
        for key in touched {
            let state = self.table.get_mut(&key).expect("touched key present");
            state.holders.retain(|&(t, _)| t != txn);
            state.waiters.retain(|&(t, _)| t != txn);
            while let Some(&(w, mode)) = state.waiters.front() {
                let compatible = state
                    .holders
                    .iter()
                    .all(|&(t, m)| t == w || m.compatible(mode));
                if !compatible {
                    break;
                }
                state.waiters.pop_front();
                if let Some(h) = state.holders.iter_mut().find(|(t, _)| *t == w) {
                    h.1 = mode;
                } else {
                    state.holders.push((w, mode));
                }
                granted.push((w, key, mode));
                if mode == LockMode::Exclusive {
                    break;
                }
            }
        }
        granted
    }

    fn holders(&self, key: Key) -> Vec<(TxnId, LockMode)> {
        self.table
            .get(&key)
            .map(|s| s.holders.clone())
            .unwrap_or_default()
    }

    fn waiters(&self, key: Key) -> Vec<(TxnId, LockMode)> {
        self.table
            .get(&key)
            .map(|s| s.waiters.iter().copied().collect())
            .unwrap_or_default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The dense Vec-backed lock table agrees with the naive reference
    /// model decision-for-decision: grants, wound victims, promotion
    /// order and the resulting holder/waiter state, under both policies
    /// (with wounded transactions aborted, as the protocols do).
    #[test]
    fn dense_lock_table_matches_reference_model(
        ops in lock_ops(),
        detect in any::<bool>(),
    ) {
        let policy = if detect { DeadlockPolicy::Detect } else { DeadlockPolicy::WoundWait };
        let mut lm = LockManager::with_keyspace(policy, Keyspace::dense(4));
        let mut reference = RefLockManager::new(policy);
        let mut dead: std::collections::HashSet<TxnId> = std::collections::HashSet::new();
        for op in ops {
            match op {
                LockOp::Acquire { txn, key, exclusive } => {
                    let txn = t(txn);
                    if dead.contains(&txn) {
                        continue;
                    }
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    let got = lm.acquire(txn, Key(key as u64), mode);
                    let want = reference.acquire(txn, Key(key as u64), mode);
                    prop_assert_eq!(&got, &want, "acquire decisions diverged");
                    if let Acquire::Waiting { wounded } = got {
                        for v in wounded {
                            dead.insert(v);
                            prop_assert_eq!(
                                lm.release_all(v),
                                reference.release_all(v),
                                "abort grants diverged"
                            );
                        }
                    }
                }
                LockOp::Release { txn } => {
                    dead.remove(&t(txn));
                    prop_assert_eq!(
                        lm.release_all(t(txn)),
                        reference.release_all(t(txn)),
                        "release grants diverged"
                    );
                }
            }
            for key in 0..4 {
                prop_assert_eq!(lm.holders(Key(key)), reference.holders(Key(key)));
                prop_assert_eq!(lm.waiters(Key(key)), reference.waiters(Key(key)));
            }
        }
    }

    /// The lock table never grants incompatible holders, under either
    /// policy, for arbitrary acquire/release interleavings.
    #[test]
    fn lock_table_never_grants_conflicts(
        ops in lock_ops(),
        detect in any::<bool>(),
    ) {
        let policy = if detect { DeadlockPolicy::Detect } else { DeadlockPolicy::WoundWait };
        let mut lm = LockManager::new(policy);
        let mut dead: std::collections::HashSet<TxnId> = std::collections::HashSet::new();
        for op in ops {
            match op {
                LockOp::Acquire { txn, key, exclusive } => {
                    let txn = t(txn);
                    if dead.contains(&txn) {
                        continue;
                    }
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    if let Acquire::Waiting { wounded } = lm.acquire(txn, Key(key as u64), mode) {
                        for v in wounded {
                            dead.insert(v);
                            lm.release_all(v);
                        }
                    }
                }
                LockOp::Release { txn } => {
                    lm.release_all(t(txn));
                }
            }
            check_holder_compatibility(&lm).map_err(TestCaseError::fail)?;
        }
    }

    /// Under wound-wait (with victims actually aborted), the wait-for
    /// graph of live transactions never contains a cycle.
    #[test]
    fn wound_wait_is_deadlock_free(ops in lock_ops()) {
        let mut lm = LockManager::new(DeadlockPolicy::WoundWait);
        let mut dead: std::collections::HashSet<TxnId> = std::collections::HashSet::new();
        for op in ops {
            match op {
                LockOp::Acquire { txn, key, exclusive } => {
                    let txn = t(txn);
                    if dead.contains(&txn) {
                        continue;
                    }
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    if let Acquire::Waiting { wounded } = lm.acquire(txn, Key(key as u64), mode) {
                        for v in wounded {
                            dead.insert(v);
                            lm.release_all(v);
                        }
                    }
                }
                LockOp::Release { txn } => {
                    dead.remove(&t(txn)); // txn finished; id may be reused fresh
                    lm.release_all(t(txn));
                }
            }
            prop_assert!(lm.find_deadlock().is_none(), "wound-wait deadlocked");
        }
    }

    /// Abort is a perfect undo regardless of the write pattern.
    #[test]
    fn abort_restores_exact_state(
        writes in proptest::collection::vec((0u64..8, any::<i64>()), 1..30),
        committed_prefix in 0usize..10,
    ) {
        let mut store = Store::with_items(8, Value(0));
        let mut tm = TxnManager::new();
        // Some committed history first.
        for (i, &(k, v)) in writes.iter().take(committed_prefix.min(writes.len())).enumerate() {
            let txn = TxnId::new(i as u64 + 1, 0);
            tm.begin(txn);
            tm.write(&mut store, txn, Key(k), Value(v)).expect("active");
            tm.commit(txn).expect("active");
        }
        let fp = store.fingerprint();
        // Then one big transaction that aborts.
        let txn = TxnId::new(1_000, 0);
        tm.begin(txn);
        for &(k, v) in writes.iter().skip(committed_prefix.min(writes.len())) {
            tm.write(&mut store, txn, Key(k), Value(v.wrapping_add(1))).expect("active");
        }
        tm.abort(&mut store, txn).expect("active");
        prop_assert_eq!(store.fingerprint(), fp);
    }

    /// Two certifiers fed the same request stream reach identical
    /// verdicts and identical version state — the property that lets
    /// certification-based replication skip agreement coordination.
    #[test]
    fn certifier_is_deterministic(
        stream in proptest::collection::vec(
            (
                proptest::collection::vec((0u64..6, 0u64..4), 0..3), // read set (key, version)
                proptest::collection::vec(0u64..6, 0..3),            // written keys
            ),
            1..40,
        ),
    ) {
        let mut a = Certifier::new();
        let mut b = Certifier::new();
        for (i, (reads, writes)) in stream.iter().enumerate() {
            let txn = TxnId::new(i as u64 + 1, 0);
            let read_set: Vec<(Key, u64)> = reads.iter().map(|&(k, v)| (Key(k), v)).collect();
            let ws = WriteSet {
                txn,
                writes: writes
                    .iter()
                    .map(|&k| WriteRecord { key: Key(k), value: Value(1), version: 0 })
                    .collect(),
            };
            let va = a.certify(&read_set, &ws);
            let vb = b.certify(&read_set, &ws);
            prop_assert_eq!(va.is_commit(), vb.is_commit());
        }
        prop_assert_eq!(a.stats(), b.stats());
        for k in 0..6 {
            prop_assert_eq!(a.version_of(Key(k)), b.version_of(Key(k)));
        }
    }

    /// When the 1SR checker produces a witness order, that order is
    /// consistent with every conflict edge; when it reports a violation,
    /// the returned cycle is a real cycle in the edge set.
    #[test]
    fn serializability_witness_is_sound(
        ops in proptest::collection::vec((0u32..2, 0u8..4, 0u64..3, any::<bool>()), 1..40),
        committed in proptest::collection::btree_set(0u8..4, 1..5),
    ) {
        let mut h = ReplicatedHistory::new();
        for &(site, txn, key, write) in &ops {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            h.record(site, t(txn), Key(key), kind);
        }
        for &c in &committed {
            h.mark_committed(t(c));
        }
        let edges = h.conflict_edges();
        match h.check_one_copy_serializable() {
            Ok(order) => {
                let pos: std::collections::HashMap<TxnId, usize> =
                    order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
                for (a, b) in &edges {
                    prop_assert!(
                        pos[a] < pos[b],
                        "witness order violates edge {} -> {}", a, b
                    );
                }
                // Every committed transaction appears exactly once.
                prop_assert_eq!(order.len(), committed.len());
            }
            Err(violation) => {
                let cycle = &violation.cycle;
                prop_assert!(cycle.len() >= 2);
                for i in 0..cycle.len() {
                    let a = cycle[i];
                    let b = cycle[(i + 1) % cycle.len()];
                    prop_assert!(
                        edges.contains(&(a, b)),
                        "reported cycle edge {} -> {} not in graph", a, b
                    );
                }
            }
        }
    }

    /// Store fingerprints are order-insensitive over the same final state
    /// and sensitive to any value difference.
    #[test]
    fn fingerprint_characterizes_state(
        writes in proptest::collection::vec((0u64..6, any::<i64>()), 1..20),
    ) {
        let mut a = Store::with_items(6, Value(0));
        let mut b = Store::with_items(6, Value(0));
        let txn = TxnId::new(1, 0);
        for &(k, v) in &writes {
            a.write(Key(k), Value(v), txn);
        }
        // Apply to b in reverse, but fix up so final values match: replay
        // only the *last* write per key.
        let mut last: std::collections::HashMap<u64, i64> = std::collections::HashMap::new();
        for &(k, v) in &writes {
            last.insert(k, v);
        }
        for (&k, &v) in &last {
            b.write(Key(k), Value(v), txn);
        }
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        // Any single-value perturbation changes the fingerprint.
        let (&k, &v) = last.iter().next().expect("non-empty");
        b.write(Key(k), Value(v.wrapping_add(1)), txn);
        prop_assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
