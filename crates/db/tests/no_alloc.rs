//! Allocation guard for the lock manager's graph queries.
//!
//! The kernel promises that `find_deadlock` and `wait_for_edges` are
//! allocation-free once warmed: with no waiters they read an empty edge
//! multiset and return early, and under contention the DFS runs in
//! persistent scratch buffers. This test installs a counting global
//! allocator and holds the kernel to that promise. It lives in its own
//! integration-test crate because the library forbids `unsafe_code` and
//! a `GlobalAlloc` impl is necessarily unsafe.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use repl_db::{Acquire, DeadlockPolicy, Key, Keyspace, LockManager, LockMode, TxnId};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn t(ts: u64) -> TxnId {
    TxnId::new(ts, 0)
}

// One test function on purpose: the counter is process-global, and
// cargo runs `#[test]` functions concurrently.
#[test]
fn graph_queries_do_not_allocate_after_warmup() {
    // Idle table: holders everywhere, no waiters. Both queries must hit
    // the empty-multiset early return.
    let mut lm = LockManager::with_keyspace(DeadlockPolicy::Detect, Keyspace::dense(64));
    for i in 0..16u64 {
        assert_eq!(
            lm.acquire(t(i + 1), Key(i), LockMode::Exclusive),
            Acquire::Granted
        );
    }
    // Warm up: activates edge tracking and sizes every scratch buffer.
    assert!(lm.find_deadlock().is_none());
    assert!(lm.wait_for_edges().is_empty());
    let before = allocations();
    for _ in 0..100 {
        assert!(lm.find_deadlock().is_none());
        assert!(lm.wait_for_edges().is_empty());
    }
    assert_eq!(
        allocations(),
        before,
        "idle find_deadlock/wait_for_edges allocated"
    );

    // Contended table, no cycle: every holder has a conflicting waiter
    // queued. find_deadlock walks the graph in its persistent scratch.
    for i in 0..16u64 {
        assert!(matches!(
            lm.acquire(t(i + 17), Key(i), LockMode::Exclusive),
            Acquire::Waiting { .. }
        ));
    }
    assert!(lm.find_deadlock().is_none()); // re-warm scratch at this size
    let before = allocations();
    for _ in 0..100 {
        assert!(lm.find_deadlock().is_none());
    }
    assert_eq!(
        allocations(),
        before,
        "contended no-cycle find_deadlock allocated"
    );
}
