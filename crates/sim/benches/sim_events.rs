//! Raw event-loop throughput of the simulation kernel.
//!
//! Measures events/second through the hot path the whole performance
//! study rides on: message offer → heap push → pop → dispatch. Three
//! shapes are benchmarked:
//!
//! * `ping_pong` — two actors, serial request/response (heap stays tiny,
//!   measures per-event constant cost);
//! * `broadcast_storm` — every actor multicasts to all others each round
//!   (deep heap, multicast clone path);
//! * `timer_wheel` — timer-only load (scheduler cost without network).
//!
//! Run with `cargo bench -p repl-sim` and compare the reported
//! per-iteration times before and after kernel changes; one iteration
//! processes a fixed event count, so time/iter is inverse events/sec.

use criterion::{criterion_group, criterion_main, Criterion};
use repl_sim::{
    impl_as_any, Actor, Context, Message, NetworkConfig, NodeId, SimConfig, SimDuration, SimTime,
    TimerId, World,
};

#[derive(Clone, Debug)]
struct Payload(u64);
impl Message for Payload {
    fn wire_size(&self) -> usize {
        8
    }
}

/// Replies to every message until `budget` replies have been sent.
struct Echo {
    peers: Vec<NodeId>,
    budget: u64,
}
impl Actor<Payload> for Echo {
    fn on_start(&mut self, ctx: &mut Context<'_, Payload>) {
        let peers = self.peers.clone();
        for p in peers {
            ctx.send(p, Payload(0));
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_, Payload>, from: NodeId, msg: Payload) {
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        ctx.send(from, Payload(msg.0 + 1));
    }
    impl_as_any!();
}

/// Multicasts to the whole group every round until `rounds` runs out.
struct Storm {
    group: Vec<NodeId>,
    rounds: u64,
}
impl Actor<Payload> for Storm {
    fn on_start(&mut self, ctx: &mut Context<'_, Payload>) {
        let targets: Vec<NodeId> = self
            .group
            .iter()
            .copied()
            .filter(|&n| n != ctx.me())
            .collect();
        ctx.multicast(targets, Payload(0));
    }
    fn on_message(&mut self, ctx: &mut Context<'_, Payload>, _from: NodeId, msg: Payload) {
        if self.rounds == 0 {
            return;
        }
        self.rounds -= 1;
        let targets: Vec<NodeId> = self
            .group
            .iter()
            .copied()
            .filter(|&n| n != ctx.me())
            .collect();
        ctx.multicast(targets, Payload(msg.0 + 1));
    }
    impl_as_any!();
}

/// A 1 KiB writeset-shaped payload cloned deeply on every multicast leg.
#[derive(Clone, Debug)]
struct FatPayload(Vec<u64>);
impl Message for FatPayload {
    fn wire_size(&self) -> usize {
        8 * self.0.len()
    }
}

/// The same payload behind an `Arc`: multicast clones are pointer bumps,
/// wire size (and thus byte accounting) unchanged.
#[derive(Clone, Debug)]
struct SharedPayload(std::sync::Arc<Vec<u64>>);
impl Message for SharedPayload {
    fn wire_size(&self) -> usize {
        8 * self.0.len()
    }
}

/// Multicasts a payload built by `make` to the group every round —
/// the shape of an ABCAST dissemination fan-out.
struct FanOut<M: Message> {
    group: Vec<NodeId>,
    rounds: u64,
    make: fn() -> M,
}
impl<M: Message> Actor<M> for FanOut<M> {
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let targets: Vec<NodeId> = self
            .group
            .iter()
            .copied()
            .filter(|&n| n != ctx.me())
            .collect();
        ctx.multicast(targets, (self.make)());
    }
    fn on_message(&mut self, ctx: &mut Context<'_, M>, _from: NodeId, _msg: M) {
        if self.rounds == 0 {
            return;
        }
        self.rounds -= 1;
        let targets: Vec<NodeId> = self
            .group
            .iter()
            .copied()
            .filter(|&n| n != ctx.me())
            .collect();
        ctx.multicast(targets, (self.make)());
    }
    impl_as_any!();
}

/// Re-arms a short timer until `ticks` runs out.
struct Wheel {
    ticks: u64,
}

/// Re-arms timers across a ladder of horizons — same-slot, level-1/2
/// slots, a far level-3 slot and beyond the wheel window — so every
/// level of the hierarchical timing wheel (and its overflow heap)
/// cascades under load, not just the near slots `Wheel` exercises.
struct WideWheel {
    ticks: u64,
}

const HORIZONS: [u64; 5] = [3, 700, 40_000, 3_000_000, 20_000_000];

impl Actor<Payload> for WideWheel {
    fn on_start(&mut self, ctx: &mut Context<'_, Payload>) {
        ctx.set_timer(SimDuration::from_ticks(1), 0);
    }
    fn on_message(&mut self, _ctx: &mut Context<'_, Payload>, _from: NodeId, _msg: Payload) {}
    fn on_timer(&mut self, ctx: &mut Context<'_, Payload>, _id: TimerId, tag: u64) {
        if self.ticks == 0 {
            return;
        }
        self.ticks -= 1;
        let dt = HORIZONS[(tag % HORIZONS.len() as u64) as usize];
        ctx.set_timer(SimDuration::from_ticks(dt), tag + 1);
    }
    impl_as_any!();
}
impl Actor<Payload> for Wheel {
    fn on_start(&mut self, ctx: &mut Context<'_, Payload>) {
        ctx.set_timer(SimDuration::from_ticks(10), 0);
    }
    fn on_message(&mut self, _ctx: &mut Context<'_, Payload>, _from: NodeId, _msg: Payload) {}
    fn on_timer(&mut self, ctx: &mut Context<'_, Payload>, _id: TimerId, tag: u64) {
        if self.ticks == 0 {
            return;
        }
        self.ticks -= 1;
        ctx.set_timer(SimDuration::from_ticks(10), tag + 1);
    }
    impl_as_any!();
}

fn run_ping_pong(msgs: u64) -> u64 {
    let mut world = World::new(SimConfig::new(42).with_trace(false));
    let a = world.add_actor(Box::new(Echo {
        peers: Vec::new(),
        budget: msgs,
    }));
    let _b = world.add_actor(Box::new(Echo {
        peers: vec![a],
        budget: msgs,
    }));
    world.start();
    world.run_to_quiescence(SimTime::from_ticks(u64::MAX / 2));
    world.metrics().events_processed
}

fn run_storm(nodes: u32, rounds: u64) -> u64 {
    let mut world = World::new(SimConfig::new(42).with_trace(false));
    let group: Vec<NodeId> = (0..nodes).map(NodeId::new).collect();
    for _ in 0..nodes {
        world.add_actor(Box::new(Storm {
            group: group.clone(),
            rounds,
        }));
    }
    world.start();
    world.run_to_quiescence(SimTime::from_ticks(u64::MAX / 2));
    world.metrics().events_processed
}

fn run_fanout<M: Message>(nodes: u32, rounds: u64, make: fn() -> M) -> u64 {
    let mut world = World::new(SimConfig::new(42).with_trace(false));
    let group: Vec<NodeId> = (0..nodes).map(NodeId::new).collect();
    for _ in 0..nodes {
        world.add_actor(Box::new(FanOut {
            group: group.clone(),
            rounds,
            make,
        }));
    }
    world.start();
    world.run_to_quiescence(SimTime::from_ticks(u64::MAX / 2));
    world.metrics().events_processed
}

fn run_wide_wheel(actors: u32, ticks: u64) -> u64 {
    let mut world: World<Payload> = World::new(
        SimConfig::new(42)
            .with_network(NetworkConfig::instant())
            .with_trace(false),
    );
    for _ in 0..actors {
        world.add_actor(Box::new(WideWheel { ticks }));
    }
    world.start();
    world.run_to_quiescence(SimTime::from_ticks(u64::MAX / 2));
    world.metrics().events_processed
}

fn run_timer_wheel(actors: u32, ticks: u64) -> u64 {
    let mut world: World<Payload> = World::new(
        SimConfig::new(42)
            .with_network(NetworkConfig::instant())
            .with_trace(false),
    );
    for _ in 0..actors {
        world.add_actor(Box::new(Wheel { ticks }));
    }
    world.start();
    world.run_to_quiescence(SimTime::from_ticks(u64::MAX / 2));
    world.metrics().events_processed
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_events");
    g.sample_size(10);
    g.bench_function("ping_pong/5000_msgs", |b| {
        b.iter(|| std::hint::black_box(run_ping_pong(5_000)))
    });
    g.bench_function("broadcast_storm/8x200", |b| {
        b.iter(|| std::hint::black_box(run_storm(8, 200)))
    });
    g.bench_function("timer_wheel/16x1000", |b| {
        b.iter(|| std::hint::black_box(run_timer_wheel(16, 1_000)))
    });
    g.bench_function("timer_wheel_wide/16x1000", |b| {
        b.iter(|| std::hint::black_box(run_wide_wheel(16, 1_000)))
    });
    // The host-side cost of sharing multicast payloads: same wire bytes,
    // deep Vec clones vs Arc pointer bumps on every fan-out leg.
    g.bench_function("fanout_deep_clone/8x100x1KiB", |b| {
        b.iter(|| std::hint::black_box(run_fanout(8, 100, || FatPayload(vec![7; 128]))))
    });
    g.bench_function("fanout_arc_shared/8x100x1KiB", |b| {
        b.iter(|| {
            std::hint::black_box(run_fanout(8, 100, || {
                SharedPayload(std::sync::Arc::new(vec![7; 128]))
            }))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
