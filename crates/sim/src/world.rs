//! The world: event queue, scheduler, and the [`Context`] handed to actors.

use std::collections::HashSet;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::actor::{Actor, Message};
use crate::ids::{NodeId, TimerId};
use crate::wheel::TimingWheel;
use crate::metrics::Metrics;
use crate::network::{Delivery, NetFault, Network, NetworkConfig};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceLog};

/// Configuration for a [`World`].
///
/// # Examples
///
/// ```
/// use repl_sim::{SimConfig, NetworkConfig};
/// let cfg = SimConfig::new(42).with_network(NetworkConfig::wan());
/// assert_eq!(cfg.seed, 42);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for the world's deterministic RNG.
    pub seed: u64,
    /// Network model configuration.
    pub network: NetworkConfig,
    /// Whether to record a [`TraceLog`] (disable in benchmarks).
    pub trace: bool,
    /// Expected number of trace records: the log pre-sizes its buffer so
    /// steady-state recording never reallocates (0 = no hint).
    pub trace_capacity: usize,
    /// Nodes `0..coordination_nodes` form the coordination set (typically
    /// the replica servers): messages with both endpoints inside it are
    /// additionally counted in [`Metrics::coordination_messages`]. Zero
    /// (the default) disables the classification.
    pub coordination_nodes: u32,
}

impl SimConfig {
    /// Creates a configuration with the LAN network profile.
    pub fn new(seed: u64) -> Self {
        SimConfig {
            seed,
            network: NetworkConfig::lan(),
            trace: true,
            trace_capacity: 0,
            coordination_nodes: 0,
        }
    }

    /// Replaces the network configuration.
    pub fn with_network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Enables or disables trace recording.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the expected trace record count (pre-sizing hint).
    pub fn with_trace_capacity(mut self, records: usize) -> Self {
        self.trace_capacity = records;
        self
    }

    /// Declares nodes `0..n` as the coordination set (see
    /// [`Metrics::coordination_messages`]).
    pub fn with_coordination_nodes(mut self, n: u32) -> Self {
        self.coordination_nodes = n;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::new(0)
    }
}

enum Event<M> {
    Deliver { to: NodeId, from: NodeId, msg: M },
    Timer { node: NodeId, id: TimerId, tag: u64 },
    Crash { node: NodeId },
    Recover { node: NodeId },
    VolumeLoss { node: NodeId },
    Net { fault: NetFault },
}

/// Everything an actor may touch while handling an event.
struct Core<M> {
    now: SimTime,
    seq: u64,
    queue: TimingWheel<Event<M>>,
    network: Network,
    rng: SmallRng,
    trace: TraceLog,
    metrics: Metrics,
    coordination_nodes: u32,
    next_timer: u64,
    cancelled: HashSet<u64>,
    alive: Vec<bool>,
}

impl<M: Message> Core<M> {
    fn push(&mut self, time: SimTime, event: Event<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(time.ticks(), seq, event);
    }

    fn send_from(&mut self, src: NodeId, dst: NodeId, msg: M) {
        let bytes = msg.wire_size();
        self.metrics.messages_sent += 1;
        if src.raw() < self.coordination_nodes && dst.raw() < self.coordination_nodes {
            self.metrics.coordination_messages += 1;
        }
        self.metrics.bytes_sent += bytes as u64;
        if self.trace.is_enabled() {
            self.trace
                .record(self.now, src, TraceEvent::MsgSent { to: dst, bytes });
        }
        match self.network.offer(&mut self.rng, self.now, src, dst) {
            Delivery::At(t) => self.push(
                t,
                Event::Deliver {
                    to: dst,
                    from: src,
                    msg,
                },
            ),
            Delivery::Dropped => {
                self.metrics.messages_dropped += 1;
                if self.trace.is_enabled() {
                    self.trace
                        .record(self.now, src, TraceEvent::MsgDropped { to: dst });
                }
            }
        }
    }
}

/// The handle through which an actor interacts with the simulation while
/// one of its callbacks runs.
pub struct Context<'a, M: Message> {
    core: &'a mut Core<M>,
    me: NodeId,
}

impl<'a, M: Message> Context<'a, M> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The node id of the running actor.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Sends `msg` to `to`, subject to the network model. Sending to
    /// oneself always succeeds and is delivered on the next tick.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.core.send_from(self.me, to, msg);
    }

    /// Sends `msg` to every node in `targets`. The last target receives
    /// the original message; earlier targets receive clones, so an
    /// `n`-way multicast costs `n - 1` clones instead of `n`.
    pub fn multicast<I>(&mut self, targets: I, msg: M)
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut it = targets.into_iter().peekable();
        let mut msg = Some(msg);
        while let Some(t) = it.next() {
            let m = if it.peek().is_some() {
                msg.clone().expect("multicast payload present")
            } else {
                msg.take().expect("multicast payload present")
            };
            self.send(t, m);
        }
    }

    /// Arms a timer that fires after `delay` with the given `tag`.
    /// Returns an id usable with [`Context::cancel_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId(self.core.next_timer);
        self.core.next_timer += 1;
        let at = self.core.now + delay;
        self.core.push(
            at,
            Event::Timer {
                node: self.me,
                id,
                tag,
            },
        );
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired or unknown
    /// timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.core.cancelled.insert(id.0);
    }

    /// The world's deterministic RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.core.rng
    }

    /// Records an application-level trace marker (see [`TraceEvent::Mark`]).
    pub fn mark(&mut self, tag: &'static str, a: u64, b: u64) {
        if self.core.trace.is_enabled() {
            let now = self.core.now;
            self.core
                .trace
                .record(now, self.me, TraceEvent::Mark { tag, a, b });
        }
    }
}

/// A complete simulated system: actors, network, clock, and event queue.
///
/// # Examples
///
/// ```
/// use repl_sim::*;
///
/// #[derive(Clone, Debug)]
/// struct Ping(u32);
/// impl Message for Ping {}
///
/// struct Counter { seen: u32, peer: Option<NodeId> }
/// impl Actor<Ping> for Counter {
///     fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
///         if let Some(peer) = self.peer {
///             ctx.send(peer, Ping(1));
///         }
///     }
///     fn on_message(&mut self, _ctx: &mut Context<'_, Ping>, _from: NodeId, msg: Ping) {
///         self.seen += msg.0;
///     }
///     impl_as_any!();
/// }
///
/// let mut world = World::new(SimConfig::new(1));
/// let a = world.add_actor(Box::new(Counter { seen: 0, peer: None }));
/// let b = world.add_actor(Box::new(Counter { seen: 0, peer: Some(a) }));
/// # let _ = b;
/// world.start();
/// world.run_to_quiescence(SimTime::from_ticks(10_000));
/// assert_eq!(world.actor_ref::<Counter>(a).seen, 1);
/// ```
pub struct World<M: Message> {
    core: Core<M>,
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    started: bool,
}

impl<M: Message> World<M> {
    /// Creates an empty world.
    pub fn new(config: SimConfig) -> Self {
        // A disabled log stays at capacity 0 — benchmark runs must not
        // pay for trace memory they will never fill.
        let mut trace = if config.trace {
            TraceLog::with_capacity(config.trace_capacity)
        } else {
            TraceLog::new()
        };
        trace.set_enabled(config.trace);
        World {
            core: Core {
                now: SimTime::ZERO,
                seq: 0,
                queue: TimingWheel::new(),
                network: Network::new(config.network),
                rng: SmallRng::seed_from_u64(config.seed),
                trace,
                metrics: Metrics::default(),
                coordination_nodes: config.coordination_nodes,
                next_timer: 0,
                cancelled: HashSet::new(),
                alive: Vec::new(),
            },
            actors: Vec::new(),
            started: false,
        }
    }

    /// Adds an actor and returns its node id. Must be called before
    /// [`World::start`].
    ///
    /// # Panics
    ///
    /// Panics if the world has already started.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> NodeId {
        assert!(!self.started, "cannot add actors after start");
        let id = NodeId::from_index(self.actors.len());
        self.actors.push(Some(actor));
        self.core.alive.push(true);
        id
    }

    /// Number of actors in the world.
    pub fn node_count(&self) -> usize {
        self.actors.len()
    }

    /// Runs every actor's `on_start` callback in node-id order.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn start(&mut self) {
        assert!(!self.started, "world already started");
        self.started = true;
        self.core.network.reserve_nodes(self.actors.len());
        for i in 0..self.actors.len() {
            let node = NodeId::from_index(i);
            self.with_actor(node, |actor, ctx| {
                actor.on_start(ctx);
                actor.on_settle(ctx);
            });
        }
    }

    fn with_actor<F: FnOnce(&mut dyn Actor<M>, &mut Context<'_, M>)>(
        &mut self,
        node: NodeId,
        f: F,
    ) {
        let mut actor = self.actors[node.index()]
            .take()
            .expect("actor re-entrancy is impossible");
        {
            let mut ctx = Context {
                core: &mut self.core,
                me: node,
            };
            f(actor.as_mut(), &mut ctx);
        }
        self.actors[node.index()] = Some(actor);
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(next) = self.core.queue.pop() else {
            return false;
        };
        let time = SimTime::from_ticks(next.time);
        debug_assert!(time >= self.core.now, "time went backwards");
        self.core.now = time;
        self.core.metrics.events_processed += 1;
        match next.item {
            Event::Deliver { to, from, msg } => {
                if !self.core.alive[to.index()] {
                    self.core.metrics.messages_dropped += 1;
                    if self.core.trace.is_enabled() {
                        let now = self.core.now;
                        self.core
                            .trace
                            .record(now, from, TraceEvent::MsgDropped { to });
                    }
                } else {
                    self.core.metrics.messages_delivered += 1;
                    if self.core.trace.is_enabled() {
                        let bytes = msg.wire_size();
                        let now = self.core.now;
                        self.core
                            .trace
                            .record(now, to, TraceEvent::MsgDelivered { from, bytes });
                    }
                    self.with_actor(to, |actor, ctx| {
                        actor.on_message(ctx, from, msg);
                        actor.on_settle(ctx);
                    });
                }
            }
            Event::Timer { node, id, tag } => {
                let cancelled =
                    !self.core.cancelled.is_empty() && self.core.cancelled.remove(&id.0);
                if cancelled || !self.core.alive[node.index()] {
                    return true;
                }
                self.core.metrics.timers_fired += 1;
                self.with_actor(node, |actor, ctx| {
                    actor.on_timer(ctx, id, tag);
                    actor.on_settle(ctx);
                });
            }
            Event::Crash { node } => {
                if self.core.alive[node.index()] {
                    self.core.alive[node.index()] = false;
                    self.core.metrics.crashes_injected += 1;
                    let now = self.core.now;
                    self.core.trace.push(now, node, TraceEvent::Crashed);
                    let actor = self.actors[node.index()].as_mut().expect("actor present");
                    actor.on_crash(now);
                }
            }
            Event::Recover { node } => {
                if !self.core.alive[node.index()] {
                    self.core.alive[node.index()] = true;
                    self.core.metrics.recoveries_injected += 1;
                    let now = self.core.now;
                    self.core.trace.push(now, node, TraceEvent::Recovered);
                    self.with_actor(node, |actor, ctx| {
                        actor.on_recover(ctx);
                        actor.on_settle(ctx);
                    });
                }
            }
            Event::VolumeLoss { node } => {
                // A disaster can strike a live node or one already down
                // from a crash — either way the volume is gone afterwards.
                self.core.alive[node.index()] = false;
                self.core.metrics.volume_losses += 1;
                let now = self.core.now;
                self.core.trace.push(now, node, TraceEvent::VolumeLost);
                let actor = self.actors[node.index()].as_mut().expect("actor present");
                actor.on_volume_loss(now);
            }
            Event::Net { fault } => {
                match &fault {
                    NetFault::Partition(_) => self.core.metrics.partitions_started += 1,
                    NetFault::Heal => self.core.metrics.partitions_healed += 1,
                    NetFault::LinkDown { .. } | NetFault::Degrade { .. } => {
                        self.core.metrics.link_faults_injected += 1
                    }
                    NetFault::LinkUp { .. } | NetFault::Restore { .. } => {
                        self.core.metrics.link_faults_repaired += 1
                    }
                }
                let at_node = match &fault {
                    NetFault::LinkDown { src, .. }
                    | NetFault::LinkUp { src, .. }
                    | NetFault::Degrade { src, .. }
                    | NetFault::Restore { src, .. } => *src,
                    _ => NodeId::new(0),
                };
                let now = self.core.now;
                self.core
                    .trace
                    .push(now, at_node, TraceEvent::NetFault { kind: fault.kind() });
                self.core.network.apply(&fault);
            }
        }
        true
    }

    /// Processes events with time ≤ `deadline`. The clock ends at
    /// `deadline` even if the queue still holds later events.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(next) = self.core.queue.peek_time() {
            if SimTime::from_ticks(next) > deadline {
                break;
            }
            self.step();
        }
        if self.core.now < deadline {
            self.core.now = deadline;
        }
    }

    /// Runs until the queue drains or the clock would pass `limit`.
    /// Returns true if the queue drained (quiescence reached).
    pub fn run_to_quiescence(&mut self, limit: SimTime) -> bool {
        while let Some(next) = self.core.queue.peek_time() {
            if SimTime::from_ticks(next) > limit {
                return false;
            }
            self.step();
        }
        true
    }

    /// Schedules a crash of `node` at time `at`.
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        self.core.push(at, Event::Crash { node });
    }

    /// Schedules a recovery of `node` at time `at`.
    pub fn schedule_recover(&mut self, at: SimTime, node: NodeId) {
        self.core.push(at, Event::Recover { node });
    }

    /// Schedules a volume-loss disaster at `node` at time `at`: the node
    /// goes down (if it was not already) and its actor is told to discard
    /// all state modeled as living on the lost volume. The node stays
    /// down until a scheduled recovery.
    pub fn schedule_volume_loss(&mut self, at: SimTime, node: NodeId) {
        self.core.push(at, Event::VolumeLoss { node });
    }

    /// Schedules a network fault (partition, heal, link fault or repair)
    /// to be applied at time `at`, without hand-editing the network
    /// between [`World::run_until`] calls.
    pub fn schedule_net_fault(&mut self, at: SimTime, fault: NetFault) {
        self.core.push(at, Event::Net { fault });
    }

    /// Returns true if `node` is currently alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.core.alive[node.index()]
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The run trace.
    pub fn trace(&self) -> &TraceLog {
        &self.core.trace
    }

    /// The aggregate metrics.
    pub fn metrics(&self) -> Metrics {
        self.core.metrics
    }

    /// Mutable access to the network (to introduce partitions mid-run,
    /// between calls to [`World::run_until`]).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.core.network
    }

    /// Borrows a concrete actor for inspection.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist or the actor is not an `A`.
    pub fn actor_ref<A: 'static>(&self, node: NodeId) -> &A {
        self.actors[node.index()]
            .as_ref()
            .expect("actor present")
            .as_any()
            .downcast_ref::<A>()
            .expect("actor type mismatch")
    }

    /// Mutably borrows a concrete actor for inspection.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist or the actor is not an `A`.
    pub fn actor_mut<A: 'static>(&mut self, node: NodeId) -> &mut A {
        self.actors[node.index()]
            .as_mut()
            .expect("actor present")
            .as_any_mut()
            .downcast_mut::<A>()
            .expect("actor type mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_as_any;
    use crate::network::LinkQuality;

    #[derive(Clone, Debug)]
    enum TestMsg {
        Ping(u64),
        Pong(#[allow(dead_code)] u64),
    }
    impl Message for TestMsg {
        fn wire_size(&self) -> usize {
            8
        }
    }

    /// Sends `count` pings to a peer on start; counts pongs.
    struct Pinger {
        peer: NodeId,
        count: u64,
        pongs: u64,
        fired: Vec<u64>,
    }
    impl Actor<TestMsg> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
            for i in 0..self.count {
                ctx.send(self.peer, TestMsg::Ping(i));
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, TestMsg>, _from: NodeId, msg: TestMsg) {
            if let TestMsg::Pong(_) = msg {
                self.pongs += 1;
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, TestMsg>, _id: TimerId, tag: u64) {
            self.fired.push(tag);
        }
        impl_as_any!();
    }

    /// Replies Pong to every Ping, recording arrival order.
    struct Ponger {
        seen: Vec<u64>,
    }
    impl Actor<TestMsg> for Ponger {
        fn on_message(&mut self, ctx: &mut Context<'_, TestMsg>, from: NodeId, msg: TestMsg) {
            if let TestMsg::Ping(i) = msg {
                self.seen.push(i);
                ctx.send(from, TestMsg::Pong(i));
            }
        }
        impl_as_any!();
    }

    fn ping_pong_world(seed: u64) -> (World<TestMsg>, NodeId, NodeId) {
        let mut world = World::new(SimConfig::new(seed));
        let b = world.add_actor(Box::new(Ponger { seen: Vec::new() }));
        let a = world.add_actor(Box::new(Pinger {
            peer: b,
            count: 10,
            pongs: 0,
            fired: Vec::new(),
        }));
        (world, a, b)
    }

    #[test]
    fn ping_pong_roundtrip() {
        let (mut world, a, b) = ping_pong_world(3);
        world.start();
        assert!(world.run_to_quiescence(SimTime::from_ticks(100_000)));
        assert_eq!(world.actor_ref::<Pinger>(a).pongs, 10);
        assert_eq!(world.actor_ref::<Ponger>(b).seen.len(), 10);
        let m = world.metrics();
        assert_eq!(m.messages_sent, 20);
        assert_eq!(m.messages_delivered, 20);
        assert_eq!(m.messages_dropped, 0);
        assert_eq!(m.bytes_sent, 160);
    }

    #[test]
    fn fifo_links_preserve_send_order() {
        let (mut world, _a, b) = ping_pong_world(11);
        world.start();
        world.run_to_quiescence(SimTime::from_ticks(100_000));
        let seen = &world.actor_ref::<Ponger>(b).seen;
        assert_eq!(*seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn disabled_trace_run_allocates_no_trace_memory() {
        let mut world = World::new(SimConfig::new(9).with_trace(false));
        let b = world.add_actor(Box::new(Ponger { seen: Vec::new() }));
        let _a = world.add_actor(Box::new(Pinger {
            peer: b,
            count: 10,
            pongs: 0,
            fired: Vec::new(),
        }));
        world.start();
        world.run_to_quiescence(SimTime::from_ticks(100_000));
        assert_eq!(world.metrics().messages_delivered, 20);
        assert!(world.trace().is_empty());
        assert_eq!(world.trace().capacity(), 0, "disabled trace bought memory");
    }

    #[test]
    fn trace_capacity_hint_presizes_the_log() {
        let mut world = World::<TestMsg>::new(SimConfig::new(9).with_trace_capacity(1_000));
        let _ = world.add_actor(Box::new(Ponger { seen: Vec::new() }));
        assert!(world.trace().capacity() >= 1_000);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let (mut w1, _, _) = ping_pong_world(42);
        let (mut w2, _, _) = ping_pong_world(42);
        w1.start();
        w2.start();
        w1.run_to_quiescence(SimTime::from_ticks(100_000));
        w2.run_to_quiescence(SimTime::from_ticks(100_000));
        let t1: Vec<_> = w1.trace().iter().cloned().collect();
        let t2: Vec<_> = w2.trace().iter().cloned().collect();
        assert_eq!(t1, t2);
        assert_eq!(w1.now(), w2.now());
    }

    #[test]
    fn crashed_node_receives_nothing() {
        let (mut world, a, b) = ping_pong_world(5);
        world.schedule_crash(SimTime::ZERO, b);
        world.start();
        world.run_to_quiescence(SimTime::from_ticks(100_000));
        assert_eq!(world.actor_ref::<Pinger>(a).pongs, 0);
        assert!(world.actor_ref::<Ponger>(b).seen.is_empty());
        assert!(!world.is_alive(b));
        assert_eq!(world.metrics().messages_dropped, 10);
    }

    #[test]
    fn recovery_restores_message_flow() {
        let mut world: World<TestMsg> = World::new(SimConfig::new(9));
        let b = world.add_actor(Box::new(Ponger { seen: Vec::new() }));
        let a = world.add_actor(Box::new(Pinger {
            peer: b,
            count: 0,
            pongs: 0,
            fired: Vec::new(),
        }));
        world.schedule_crash(SimTime::from_ticks(10), b);
        world.schedule_recover(SimTime::from_ticks(1_000), b);
        world.start();
        world.run_until(SimTime::from_ticks(2_000));
        assert!(world.is_alive(b));
        // Message sent after recovery goes through.
        struct Probe;
        let _ = Probe;
        world.run_to_quiescence(SimTime::from_ticks(10_000));
        let _ = a;
    }

    /// Timer-behaviour actor for cancel tests.
    struct TimerUser {
        fired: Vec<u64>,
        cancel_second: bool,
    }
    impl Actor<TestMsg> for TimerUser {
        fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
            let _t1 = ctx.set_timer(SimDuration::from_ticks(10), 1);
            let t2 = ctx.set_timer(SimDuration::from_ticks(20), 2);
            ctx.set_timer(SimDuration::from_ticks(30), 3);
            if self.cancel_second {
                ctx.cancel_timer(t2);
            }
        }
        fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: NodeId, _: TestMsg) {}
        fn on_timer(&mut self, _ctx: &mut Context<'_, TestMsg>, _id: TimerId, tag: u64) {
            self.fired.push(tag);
        }
        impl_as_any!();
    }

    #[test]
    fn timers_fire_in_order_and_cancel_works() {
        let mut world: World<TestMsg> = World::new(SimConfig::new(1));
        let n = world.add_actor(Box::new(TimerUser {
            fired: Vec::new(),
            cancel_second: true,
        }));
        world.start();
        world.run_to_quiescence(SimTime::from_ticks(1_000));
        assert_eq!(world.actor_ref::<TimerUser>(n).fired, vec![1, 3]);
        assert_eq!(world.metrics().timers_fired, 2);
    }

    #[test]
    fn run_until_stops_the_clock_at_deadline() {
        let mut world: World<TestMsg> = World::new(SimConfig::new(1));
        let _ = world.add_actor(Box::new(TimerUser {
            fired: Vec::new(),
            cancel_second: false,
        }));
        world.start();
        world.run_until(SimTime::from_ticks(15));
        assert_eq!(world.now(), SimTime::from_ticks(15));
        world.run_to_quiescence(SimTime::from_ticks(1_000));
        assert_eq!(world.now(), SimTime::from_ticks(30));
    }

    #[test]
    #[should_panic(expected = "actor type mismatch")]
    fn wrong_downcast_panics() {
        let (world, a, _) = ping_pong_world(1);
        let _ = world.actor_ref::<Ponger>(a);
    }

    #[test]
    #[should_panic(expected = "cannot add actors after start")]
    fn add_after_start_panics() {
        let (mut world, _, _) = ping_pong_world(1);
        world.start();
        world.add_actor(Box::new(Ponger { seen: Vec::new() }));
    }

    #[test]
    fn partition_mid_run_blocks_traffic() {
        let mut world: World<TestMsg> = World::new(SimConfig::new(8));
        let b = world.add_actor(Box::new(Ponger { seen: Vec::new() }));
        let a = world.add_actor(Box::new(Pinger {
            peer: b,
            count: 0,
            pongs: 0,
            fired: Vec::new(),
        }));
        world.start();
        world.network_mut().set_partition(&[&[a], &[b]]);
        // No way to send from outside; just verify connectivity states.
        assert!(!world.network_mut().connected(a, b));
        world.network_mut().heal_partition();
        assert!(world.network_mut().connected(a, b));
    }

    #[test]
    fn scheduled_net_faults_apply_at_their_time() {
        let mut world: World<TestMsg> = World::new(SimConfig::new(8));
        let b = world.add_actor(Box::new(Ponger { seen: Vec::new() }));
        let a = world.add_actor(Box::new(Pinger {
            peer: b,
            count: 0,
            pongs: 0,
            fired: Vec::new(),
        }));
        world.schedule_net_fault(
            SimTime::from_ticks(100),
            NetFault::Partition(vec![vec![a], vec![b]]),
        );
        world.schedule_net_fault(SimTime::from_ticks(500), NetFault::Heal);
        world.start();
        world.run_until(SimTime::from_ticks(50));
        assert!(world.network_mut().connected(a, b), "fault applied early");
        world.run_until(SimTime::from_ticks(200));
        assert!(
            !world.network_mut().connected(a, b),
            "partition not applied"
        );
        world.run_until(SimTime::from_ticks(600));
        assert!(world.network_mut().connected(a, b), "heal not applied");
        let m = world.metrics();
        assert_eq!(m.partitions_started, 1);
        assert_eq!(m.partitions_healed, 1);
        assert_eq!(m.faults_injected(), 1);
        assert_eq!(m.repairs_applied(), 1);
        // The trace records both fault applications.
        let kinds: Vec<&str> = world
            .trace()
            .iter()
            .filter_map(|r| match r.event {
                TraceEvent::NetFault { kind } => Some(kind),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec!["partition", "heal"]);
    }

    /// Records every storage-affecting callback, for fault-kind tests.
    struct FaultProbe {
        crashes: u64,
        volume_losses: u64,
        settles: u64,
    }
    impl Actor<TestMsg> for FaultProbe {
        fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: NodeId, _: TestMsg) {}
        fn on_crash(&mut self, _now: SimTime) {
            self.crashes += 1;
        }
        fn on_volume_loss(&mut self, _now: SimTime) {
            self.volume_losses += 1;
        }
        fn on_settle(&mut self, _ctx: &mut Context<'_, TestMsg>) {
            self.settles += 1;
        }
        impl_as_any!();
    }

    #[test]
    fn volume_loss_downs_node_and_invokes_disaster_callback() {
        let mut world: World<TestMsg> = World::new(SimConfig::new(2));
        let n = world.add_actor(Box::new(FaultProbe {
            crashes: 0,
            volume_losses: 0,
            settles: 0,
        }));
        world.schedule_volume_loss(SimTime::from_ticks(10), n);
        world.schedule_recover(SimTime::from_ticks(100), n);
        world.start();
        world.run_until(SimTime::from_ticks(50));
        assert!(!world.is_alive(n));
        world.run_to_quiescence(SimTime::from_ticks(1_000));
        assert!(world.is_alive(n));
        let probe = world.actor_ref::<FaultProbe>(n);
        assert_eq!(probe.volume_losses, 1);
        assert_eq!(probe.crashes, 0, "disaster must not double as a crash");
        // on_start + on_recover each settle once.
        assert_eq!(probe.settles, 2);
        let m = world.metrics();
        assert_eq!(m.volume_losses, 1);
        assert_eq!(m.crashes_injected, 0);
        assert_eq!(m.faults_injected(), 1);
        assert!(world
            .trace()
            .iter()
            .any(|r| r.event == TraceEvent::VolumeLost && r.node == n));
    }

    #[test]
    fn volume_loss_on_crashed_node_still_wipes() {
        let mut world: World<TestMsg> = World::new(SimConfig::new(2));
        let n = world.add_actor(Box::new(FaultProbe {
            crashes: 0,
            volume_losses: 0,
            settles: 0,
        }));
        world.schedule_crash(SimTime::from_ticks(10), n);
        world.schedule_volume_loss(SimTime::from_ticks(20), n);
        world.start();
        world.run_to_quiescence(SimTime::from_ticks(1_000));
        let probe = world.actor_ref::<FaultProbe>(n);
        assert_eq!(probe.crashes, 1);
        assert_eq!(probe.volume_losses, 1);
        assert!(!world.is_alive(n));
    }

    #[test]
    fn crash_and_recovery_counters_count_state_changes_only() {
        let (mut world, _a, b) = ping_pong_world(5);
        // Double crash and double recover: only the first of each changes
        // state and only those are counted.
        world.schedule_crash(SimTime::from_ticks(10), b);
        world.schedule_crash(SimTime::from_ticks(20), b);
        world.schedule_recover(SimTime::from_ticks(30), b);
        world.schedule_recover(SimTime::from_ticks(40), b);
        world.start();
        world.run_to_quiescence(SimTime::from_ticks(100_000));
        let m = world.metrics();
        assert_eq!(m.crashes_injected, 1);
        assert_eq!(m.recoveries_injected, 1);
    }

    /// Pings its peer once, from a timer (so scheduled faults can land
    /// before the send).
    struct LatePinger {
        peer: NodeId,
        pongs: u64,
    }
    impl Actor<TestMsg> for LatePinger {
        fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
            ctx.set_timer(SimDuration::from_ticks(1_000), 0);
        }
        fn on_message(&mut self, _: &mut Context<'_, TestMsg>, _: NodeId, msg: TestMsg) {
            if let TestMsg::Pong(_) = msg {
                self.pongs += 1;
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, TestMsg>, _: TimerId, _: u64) {
            ctx.send(self.peer, TestMsg::Ping(0));
        }
        impl_as_any!();
    }

    #[test]
    fn scheduled_link_degrade_delays_messages() {
        let mut world: World<TestMsg> = World::new(SimConfig::new(13));
        let b = world.add_actor(Box::new(Ponger { seen: Vec::new() }));
        let a = world.add_actor(Box::new(LatePinger { peer: b, pongs: 0 }));
        // Degrade a→b before the timed ping at t=1000: the ping pays the
        // spike, the pong (b→a) does not.
        world.schedule_net_fault(
            SimTime::from_ticks(500),
            NetFault::Degrade {
                src: a,
                dst: b,
                quality: LinkQuality::latency_spike(SimDuration::from_ticks(10_000)),
            },
        );
        world.start();
        world.run_to_quiescence(SimTime::from_ticks(100_000));
        assert_eq!(world.actor_ref::<LatePinger>(a).pongs, 1);
        assert_eq!(world.metrics().link_faults_injected, 1);
        // Delivery of the ping happened after the spike.
        let delivered_at = world
            .trace()
            .iter()
            .find(|r| matches!(r.event, TraceEvent::MsgDelivered { .. }) && r.node == b)
            .map(|r| r.time)
            .expect("ping delivered");
        assert!(
            delivered_at.ticks() >= 11_100,
            "spike skipped: {delivered_at}"
        );
    }
}
