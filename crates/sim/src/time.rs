//! Virtual time for the simulation.
//!
//! The simulator advances a logical clock measured in *ticks*; by convention
//! one tick is one microsecond, which keeps the arithmetic exact while being
//! fine-grained enough to model LAN latencies (hundreds of ticks) and
//! execution costs (tens to thousands of ticks).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in ticks since the start of the run.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`].
///
/// # Examples
///
/// ```
/// use repl_sim::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_ticks(5);
/// assert_eq!(t.ticks(), 5);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from a raw tick count.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Returns the raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use repl_sim::{SimTime, SimDuration};
    /// let a = SimTime::from_ticks(10);
    /// let b = SimTime::from_ticks(25);
    /// assert_eq!(b.since(a), SimDuration::from_ticks(15));
    /// assert_eq!(a.since(b), SimDuration::ZERO);
    /// ```
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

/// A span of virtual time, in ticks.
///
/// # Examples
///
/// ```
/// use repl_sim::SimDuration;
/// let d = SimDuration::from_ticks(3) + SimDuration::from_ticks(4);
/// assert_eq!(d.ticks(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from a raw tick count.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Returns the raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Multiplies the duration by an integer factor.
    pub const fn times(self, factor: u64) -> Self {
        SimDuration(self.0 * factor)
    }

    /// Returns true if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ordering_and_arithmetic() {
        let a = SimTime::from_ticks(100);
        let b = a + SimDuration::from_ticks(50);
        assert_eq!(b.ticks(), 150);
        assert!(b > a);
        assert_eq!(b - a, SimDuration::from_ticks(50));
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_ticks(10);
        let b = SimTime::from_ticks(5);
        assert_eq!(b.since(a), SimDuration::ZERO);
    }

    #[test]
    fn duration_times_and_zero() {
        assert_eq!(SimDuration::from_ticks(4).times(3).ticks(), 12);
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_ticks(1).is_zero());
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimTime::from_ticks(7).to_string(), "t7");
        assert_eq!(SimDuration::from_ticks(7).to_string(), "7t");
    }

    #[test]
    fn add_assign_works() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_ticks(9);
        assert_eq!(t.ticks(), 9);
        let mut d = SimDuration::ZERO;
        d += SimDuration::from_ticks(2);
        assert_eq!(d.ticks(), 2);
    }
}
