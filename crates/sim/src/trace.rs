//! Run traces: a chronological record of everything observable in a run.
//!
//! The trace is the raw material for regenerating the paper's figures:
//! protocol implementations mark the five functional phases with
//! [`TraceEvent::Mark`] records, and the harness reconstructs the phase
//! diagrams (Figs. 2–4, 7–14) from them.

use crate::ids::NodeId;
use crate::time::SimTime;

/// One observable event in a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message left `node` towards `to`.
    MsgSent {
        /// Destination node.
        to: NodeId,
        /// Approximate payload size.
        bytes: usize,
    },
    /// A message from `from` was handed to `node`'s actor.
    MsgDelivered {
        /// Originating node.
        from: NodeId,
        /// Approximate payload size.
        bytes: usize,
    },
    /// A message was lost (network loss, partition, or dead destination).
    MsgDropped {
        /// Intended destination.
        to: NodeId,
    },
    /// The node crashed.
    Crashed,
    /// The node recovered from a crash.
    Recovered,
    /// The node's local storage volume was lost (disaster fault): its
    /// WAL and versioned store are gone, and the node is down until a
    /// scheduled recovery restores it from a durable tier.
    VolumeLost,
    /// A scheduled network fault was applied. Global faults (partitions,
    /// heals) are recorded against node 0; link faults against the link's
    /// source node.
    NetFault {
        /// Fault kind: `"partition"`, `"heal"`, `"link-down"`, `"link-up"`,
        /// `"degrade"` or `"restore"`.
        kind: &'static str,
    },
    /// An application-level marker. Replication protocols use `tag` for the
    /// functional-model phase name (`"RE"`, `"SC"`, `"EX"`, `"AC"`, `"END"`)
    /// and `a` for the operation id; `b` is free-form per protocol.
    Mark {
        /// Marker kind, e.g. a phase name.
        tag: &'static str,
        /// First payload word (operation id by convention).
        a: u64,
        /// Second payload word (protocol-specific).
        b: u64,
    },
}

/// A trace record: when, where, what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time of the event.
    pub time: SimTime,
    /// The node at which the event happened.
    pub node: NodeId,
    /// The event itself.
    pub event: TraceEvent,
}

/// An append-only chronological log of [`TraceRecord`]s.
///
/// # Examples
///
/// ```
/// use repl_sim::{TraceLog, TraceEvent, NodeId, SimTime};
///
/// let mut log = TraceLog::new();
/// log.push(SimTime::ZERO, NodeId::new(0), TraceEvent::Mark { tag: "RE", a: 1, b: 0 });
/// assert_eq!(log.len(), 1);
/// assert_eq!(log.marks("RE").count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    records: Vec<TraceRecord>,
    enabled: bool,
}

impl TraceLog {
    /// Creates an empty, enabled trace log.
    pub fn new() -> Self {
        TraceLog {
            records: Vec::new(),
            enabled: true,
        }
    }

    /// Creates an enabled trace log with room for `capacity` records, so
    /// steady-state recording never reallocates mid-run.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceLog {
            records: Vec::with_capacity(capacity),
            enabled: true,
        }
    }

    /// Enables or disables recording. Benchmarks disable tracing to keep
    /// the measurement free of allocation noise.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Returns true if recording is enabled.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a record (no-op when disabled).
    #[inline]
    pub fn push(&mut self, time: SimTime, node: NodeId, event: TraceEvent) {
        if self.enabled {
            self.records.push(TraceRecord { time, node, event });
        }
    }

    /// Appends a record without checking [`is_enabled`](Self::is_enabled).
    ///
    /// Hot paths guard on `is_enabled()` themselves so a disabled log
    /// costs one predictable branch and the event is never even built.
    #[inline]
    pub fn record(&mut self, time: SimTime, node: NodeId, event: TraceEvent) {
        self.records.push(TraceRecord { time, node, event });
    }

    /// Records currently allocatable without reallocation.
    pub fn capacity(&self) -> usize {
        self.records.capacity()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns true if the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over all records in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Iterates over the [`TraceEvent::Mark`] records with the given tag,
    /// yielding `(record, a, b)`.
    pub fn marks<'a>(
        &'a self,
        tag: &'static str,
    ) -> impl Iterator<Item = (&'a TraceRecord, u64, u64)> + 'a {
        self.records.iter().filter_map(move |r| match r.event {
            TraceEvent::Mark { tag: t, a, b } if t == tag => Some((r, a, b)),
            _ => None,
        })
    }

    /// Clears all records.
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// A 64-bit FNV-1a digest of the full log: every record's time, node
    /// and event, in order. Two runs with the same seed must produce the
    /// same hash — the determinism oracle compares these across serial
    /// and parallel execution.
    pub fn hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        for r in &self.records {
            mix(r.time.ticks());
            mix(r.node.raw() as u64);
            match &r.event {
                TraceEvent::MsgSent { to, bytes } => {
                    mix(1);
                    mix(to.raw() as u64);
                    mix(*bytes as u64);
                }
                TraceEvent::MsgDelivered { from, bytes } => {
                    mix(2);
                    mix(from.raw() as u64);
                    mix(*bytes as u64);
                }
                TraceEvent::MsgDropped { to } => {
                    mix(3);
                    mix(to.raw() as u64);
                }
                TraceEvent::Crashed => mix(4),
                TraceEvent::Recovered => mix(5),
                TraceEvent::VolumeLost => mix(8),
                TraceEvent::NetFault { kind } => {
                    mix(6);
                    for b in kind.bytes() {
                        mix(b as u64);
                    }
                }
                TraceEvent::Mark { tag, a, b } => {
                    mix(7);
                    for byte in tag.bytes() {
                        mix(byte as u64);
                    }
                    mix(*a);
                    mix(*b);
                }
            }
        }
        h
    }
}

impl<'a> IntoIterator for &'a TraceLog {
    type Item = &'a TraceRecord;
    type IntoIter = std::slice::Iter<'a, TraceRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_filter_marks() {
        let mut log = TraceLog::new();
        log.push(
            SimTime::from_ticks(1),
            NodeId::new(0),
            TraceEvent::Mark {
                tag: "RE",
                a: 7,
                b: 0,
            },
        );
        log.push(
            SimTime::from_ticks(2),
            NodeId::new(1),
            TraceEvent::Mark {
                tag: "EX",
                a: 7,
                b: 0,
            },
        );
        log.push(
            SimTime::from_ticks(3),
            NodeId::new(1),
            TraceEvent::MsgSent {
                to: NodeId::new(0),
                bytes: 10,
            },
        );
        assert_eq!(log.len(), 3);
        let re: Vec<_> = log.marks("RE").collect();
        assert_eq!(re.len(), 1);
        assert_eq!(re[0].1, 7);
        assert_eq!(log.marks("EX").count(), 1);
        assert_eq!(log.marks("AC").count(), 0);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::new();
        log.set_enabled(false);
        assert!(!log.is_enabled());
        log.push(SimTime::ZERO, NodeId::new(0), TraceEvent::Crashed);
        assert!(log.is_empty());
    }

    #[test]
    fn disabled_log_allocates_no_memory() {
        let mut log = TraceLog::new();
        log.set_enabled(false);
        for i in 0..1000 {
            log.push(SimTime::from_ticks(i), NodeId::new(0), TraceEvent::Crashed);
        }
        assert_eq!(log.capacity(), 0, "disabled runs must not buy trace memory");
    }

    #[test]
    fn with_capacity_presizes_the_record_buffer() {
        let mut log = TraceLog::with_capacity(256);
        let cap = log.capacity();
        assert!(cap >= 256);
        for i in 0..256 {
            log.push(
                SimTime::from_ticks(i),
                NodeId::new(0),
                TraceEvent::Recovered,
            );
        }
        assert_eq!(log.capacity(), cap, "pre-sized pushes must not reallocate");
        assert_eq!(log.len(), 256);
    }

    #[test]
    fn iteration_is_chronological_insertion_order() {
        let mut log = TraceLog::new();
        for i in 0..5 {
            log.push(SimTime::from_ticks(i), NodeId::new(0), TraceEvent::Crashed);
        }
        let times: Vec<u64> = log.iter().map(|r| r.time.ticks()).collect();
        assert_eq!(times, vec![0, 1, 2, 3, 4]);
        let times2: Vec<u64> = (&log).into_iter().map(|r| r.time.ticks()).collect();
        assert_eq!(times, times2);
    }

    #[test]
    fn hash_distinguishes_logs_and_is_stable() {
        let mut a = TraceLog::new();
        let mut b = TraceLog::new();
        assert_eq!(a.hash(), b.hash(), "empty logs hash alike");
        for log in [&mut a, &mut b] {
            log.push(
                SimTime::from_ticks(5),
                NodeId::new(1),
                TraceEvent::MsgSent {
                    to: NodeId::new(2),
                    bytes: 64,
                },
            );
        }
        assert_eq!(a.hash(), b.hash(), "identical logs hash alike");
        b.push(SimTime::from_ticks(6), NodeId::new(1), TraceEvent::Crashed);
        assert_ne!(a.hash(), b.hash(), "extra record changes the hash");
        let mut c = TraceLog::new();
        c.push(
            SimTime::from_ticks(5),
            NodeId::new(1),
            TraceEvent::MsgDropped { to: NodeId::new(2) },
        );
        assert_ne!(a.hash(), c.hash(), "different event kinds hash apart");
    }

    #[test]
    fn clear_empties_log() {
        let mut log = TraceLog::new();
        log.push(SimTime::ZERO, NodeId::new(0), TraceEvent::Recovered);
        log.clear();
        assert!(log.is_empty());
    }
}
