//! A simulated durable object store — the "bottomless" tier that
//! backs the tiered-durability experiments.
//!
//! The store is a *passive analytic model*, not an actor: uploads and
//! downloads do not travel through the simulated network (the durable
//! tier has its own dedicated path in real deployments, so backup
//! traffic must not contend with replication traffic, and a disabled
//! tier must leave a run bit-for-bit unchanged). An upload instead
//! computes the virtual time at which the shipped frame becomes
//! durable: serialized behind earlier uploads by the configured
//! bandwidth, then delayed by the tier's latency (`upload_lag`).
//!
//! With `upload_lag == 0` and unlimited bandwidth a frame is durable
//! the instant it is sealed — the synchronous-tier limit the
//! digest-identity tests pin down.

/// Configuration of the simulated object store.
///
/// # Examples
///
/// ```
/// use repl_sim::ObjectStoreConfig;
/// let cfg = ObjectStoreConfig::default();
/// assert_eq!(cfg.upload_lag, 0);
/// assert_eq!(cfg.bandwidth_bytes_per_tick, 0); // unlimited
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectStoreConfig {
    /// One-way latency of a PUT, in virtual ticks: the time between a
    /// frame leaving the uploader and the store acknowledging it
    /// durable. Zero models a synchronous durable tier.
    pub upload_lag: u64,
    /// Upload bandwidth in bytes per tick; `0` means unlimited.
    /// Uploads are serialized: a frame's transfer starts only after
    /// the previous frame finished transferring.
    pub bandwidth_bytes_per_tick: u64,
    /// Download bandwidth in bytes per tick for restores; `0` means
    /// unlimited (the restore then costs only `upload_lag` per GET).
    pub download_bytes_per_tick: u64,
    /// Accounting cost per PUT request, in abstract cost units.
    pub put_cost: u64,
    /// Accounting cost per 1024 uploaded bytes, in abstract cost units.
    pub cost_per_kib: u64,
}

impl Default for ObjectStoreConfig {
    fn default() -> Self {
        ObjectStoreConfig {
            upload_lag: 0,
            bandwidth_bytes_per_tick: 0,
            download_bytes_per_tick: 0,
            put_cost: 1,
            cost_per_kib: 1,
        }
    }
}

impl ObjectStoreConfig {
    /// A synchronous tier: zero latency, unlimited bandwidth.
    pub fn synchronous() -> Self {
        ObjectStoreConfig::default()
    }

    /// A tier with the given PUT latency and otherwise default limits.
    pub fn with_lag(lag: u64) -> Self {
        ObjectStoreConfig {
            upload_lag: lag,
            ..ObjectStoreConfig::default()
        }
    }
}

/// One node's view of the simulated object store: upload scheduling
/// state plus cumulative accounting.
///
/// # Examples
///
/// ```
/// use repl_sim::{ObjectStore, ObjectStoreConfig};
///
/// let mut os = ObjectStore::new(ObjectStoreConfig::with_lag(500));
/// let durable_at = os.upload(1_000, 64);
/// assert_eq!(durable_at, 1_500);
/// assert_eq!(os.puts(), 1);
/// assert_eq!(os.bytes_uploaded(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct ObjectStore {
    cfg: ObjectStoreConfig,
    /// Virtual time until which the upload link is busy.
    busy_until: u64,
    puts: u64,
    bytes_uploaded: u64,
    cost: u64,
}

impl ObjectStore {
    /// Creates an empty store model.
    pub fn new(cfg: ObjectStoreConfig) -> Self {
        ObjectStore {
            cfg,
            busy_until: 0,
            puts: 0,
            bytes_uploaded: 0,
            cost: 0,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> ObjectStoreConfig {
        self.cfg
    }

    /// Ships `bytes` at time `now` and returns the virtual time at
    /// which the frame is durable in the store: transfer start is
    /// serialized behind earlier uploads, the transfer itself is paced
    /// by the upload bandwidth, and the PUT latency is added on top.
    pub fn upload(&mut self, now: u64, bytes: u64) -> u64 {
        let start = now.max(self.busy_until);
        let transfer = match self.cfg.bandwidth_bytes_per_tick {
            0 => 0,
            bw => bytes.div_ceil(bw),
        };
        self.busy_until = start + transfer;
        self.puts += 1;
        self.bytes_uploaded += bytes;
        self.cost += self.cfg.put_cost + (bytes / 1024) * self.cfg.cost_per_kib;
        self.busy_until + self.cfg.upload_lag
    }

    /// Ticks needed to download `bytes` during a restore: one GET
    /// round-trip (the upload lag again) plus the paced transfer.
    pub fn download_ticks(&self, bytes: u64) -> u64 {
        let transfer = match self.cfg.download_bytes_per_tick {
            0 => 0,
            bw => bytes.div_ceil(bw),
        };
        self.cfg.upload_lag + transfer
    }

    /// PUT requests issued so far.
    pub fn puts(&self) -> u64 {
        self.puts
    }

    /// Total bytes shipped to the tier.
    pub fn bytes_uploaded(&self) -> u64 {
        self.bytes_uploaded
    }

    /// Accumulated abstract storage cost (PUTs plus volume).
    pub fn cost(&self) -> u64 {
        self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronous_tier_is_durable_instantly() {
        let mut os = ObjectStore::new(ObjectStoreConfig::synchronous());
        assert_eq!(os.upload(0, 1_000), 0);
        assert_eq!(os.upload(77, 1_000_000), 77);
        assert_eq!(os.download_ticks(1 << 30), 0);
    }

    #[test]
    fn lag_shifts_durability_but_not_ordering() {
        let mut os = ObjectStore::new(ObjectStoreConfig::with_lag(250));
        assert_eq!(os.upload(100, 10), 350);
        // Unlimited bandwidth: uploads don't queue behind each other.
        assert_eq!(os.upload(101, 10), 351);
    }

    #[test]
    fn bandwidth_serializes_uploads() {
        let cfg = ObjectStoreConfig {
            upload_lag: 100,
            bandwidth_bytes_per_tick: 10,
            ..ObjectStoreConfig::default()
        };
        let mut os = ObjectStore::new(cfg);
        // 95 bytes at 10 B/tick = 10 ticks of transfer, then the lag.
        assert_eq!(os.upload(0, 95), 110);
        // Second upload queues behind the first transfer (ends t=10).
        assert_eq!(os.upload(5, 20), 112);
        assert_eq!(os.puts(), 2);
        assert_eq!(os.bytes_uploaded(), 115);
    }

    #[test]
    fn download_pays_lag_and_transfer() {
        let cfg = ObjectStoreConfig {
            upload_lag: 40,
            download_bytes_per_tick: 8,
            ..ObjectStoreConfig::default()
        };
        let os = ObjectStore::new(cfg);
        assert_eq!(os.download_ticks(0), 40);
        assert_eq!(os.download_ticks(64), 48);
        assert_eq!(os.download_ticks(65), 49);
    }

    #[test]
    fn cost_accounts_puts_and_volume() {
        let cfg = ObjectStoreConfig {
            put_cost: 5,
            cost_per_kib: 2,
            ..ObjectStoreConfig::default()
        };
        let mut os = ObjectStore::new(cfg);
        os.upload(0, 2048);
        os.upload(1, 100);
        assert_eq!(os.cost(), 5 + 4 + 5 + 0);
    }
}
