//! A hierarchical timing wheel: the event queue behind [`World`].
//!
//! The simulator's hot path is `push`/`pop` on the pending-event set.
//! A binary heap is `O(log n)` per operation with poor locality once
//! millions of open-loop arrivals are pending; the wheel makes both
//! operations amortised `O(1)` by bucketing events into 64-slot levels
//! of geometrically increasing span (1, 64, 64², 64³ ticks per slot —
//! a 64⁴ ≈ 16.8M-tick horizon), with one occupancy bitmap per level so
//! advancing the cursor is a couple of `trailing_zeros` scans.
//!
//! **Ordering contract** (what the digest suite locks in): events pop
//! in exactly ascending `(time, seq)` order — identical to the
//! reversed-`Ord` `BinaryHeap` this replaces. Within a tick the
//! insertion sequence number breaks ties; a slot is sorted by `seq`
//! once when it becomes the active tick, and same-tick events pushed
//! *while* that tick drains carry larger sequence numbers than
//! anything pending, so appending keeps the order exact.
//!
//! Placement is by absolute-time alignment, not delta: an event lives
//! at the lowest level whose slot index path matches the cursor's
//! (same 64-tick window → level 0; same 64²-window → level 1; …).
//! Slots therefore never mix windows, scans never wrap, and a slot
//! cascades to finer levels exactly when the cursor enters its span.
//! Events beyond the top-level window sit in a small `(time, seq)`
//! min-heap and re-enter the wheel when it drains up to them.
//!
//! [`World`]: crate::World

use std::collections::{BinaryHeap, VecDeque};

/// log₂(slots per level).
const BITS: usize = 6;
/// Slots per level (one occupancy bit each in a `u64` bitmap).
const SLOTS: usize = 1 << BITS;
/// Number of wheel levels; events further than `64^LEVELS` ticks from
/// the cursor wait in the overflow heap.
const LEVELS: usize = 4;
/// Shift that identifies an event's top-level window.
const WINDOW_SHIFT: usize = BITS * LEVELS;

/// One queued event: its due time, insertion sequence number (the
/// total-order tie-break) and the caller's payload.
#[derive(Debug, Clone)]
pub struct WheelEntry<T> {
    /// Due tick.
    pub time: u64,
    /// Insertion sequence number; unique, monotonically increasing.
    pub seq: u64,
    /// The scheduled payload.
    pub item: T,
}

/// Overflow-heap wrapper: min-heap on `(time, seq)` over std's
/// max-heap, mirroring the reversed `Ord` of the old event heap.
#[derive(Debug)]
struct FarEntry<T>(WheelEntry<T>);

impl<T> PartialEq for FarEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.seq == other.0.seq
    }
}
impl<T> Eq for FarEntry<T> {}
impl<T> PartialOrd for FarEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for FarEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.0.time, other.0.seq).cmp(&(self.0.time, self.0.seq))
    }
}

/// Hierarchical timing wheel with exact `(time, seq)` pop order.
///
/// ```
/// use repl_sim::TimingWheel;
/// let mut w: TimingWheel<&str> = TimingWheel::new();
/// w.push(10, 0, "b");
/// w.push(5, 1, "a");
/// w.push(10, 2, "c");
/// assert_eq!(w.peek_time(), Some(5));
/// assert_eq!(w.pop().unwrap().item, "a");
/// assert_eq!(w.pop().unwrap().item, "b"); // same tick: seq order
/// assert_eq!(w.pop().unwrap().item, "c");
/// assert!(w.pop().is_none());
/// ```
#[derive(Debug)]
pub struct TimingWheel<T> {
    /// `LEVELS × SLOTS` buckets, flattened (`level * SLOTS + index`).
    slots: Vec<Vec<WheelEntry<T>>>,
    /// One occupancy bit per slot, per level.
    occupied: [u64; LEVELS],
    /// Events due beyond the top-level window.
    overflow: BinaryHeap<FarEntry<T>>,
    /// The active tick's events, ascending `seq`.
    current: VecDeque<WheelEntry<T>>,
    /// Tick the `current` buffer belongs to.
    current_time: u64,
    /// Lower bound on every queued time; advances as events pop.
    cursor: u64,
    /// Memoised next-event time (valid only while `current` is empty).
    cached_next: Option<u64>,
    /// Total queued events, `current` included.
    len: usize,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimingWheel<T> {
    /// Creates an empty wheel with its cursor at tick 0.
    pub fn new() -> Self {
        TimingWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            overflow: BinaryHeap::new(),
            current: VecDeque::new(),
            current_time: 0,
            cursor: 0,
            cached_next: None,
            len: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queues `item` at `time` with tie-break `seq`.
    ///
    /// `seq` values must be unique and assigned in push order (the
    /// caller's monotonic counter); `time` must not precede the last
    /// popped event's time.
    pub fn push(&mut self, time: u64, seq: u64, item: T) {
        debug_assert!(
            time >= self.cursor || (!self.current.is_empty() && time >= self.current_time),
            "scheduled into the past: t={time} cursor={}",
            self.cursor
        );
        let e = WheelEntry { time, seq, item };
        if !self.current.is_empty() && time == self.current_time {
            // Same-tick push while that tick drains: seq is larger than
            // every pending seq, so appending preserves sorted order.
            self.current.push_back(e);
        } else {
            self.insert_wheel(e);
        }
        if let Some(n) = self.cached_next {
            if time < n {
                self.cached_next = Some(time);
            }
        }
        self.len += 1;
    }

    /// Pops the earliest event in `(time, seq)` order.
    pub fn pop(&mut self) -> Option<WheelEntry<T>> {
        if self.current.is_empty() && !self.advance() {
            return None;
        }
        self.cached_next = None;
        self.len -= 1;
        self.current.pop_front()
    }

    /// The earliest queued time, without disturbing the queue.
    pub fn peek_time(&mut self) -> Option<u64> {
        if !self.current.is_empty() {
            return Some(self.current_time);
        }
        if self.len == 0 {
            return None;
        }
        if self.cached_next.is_none() {
            self.cached_next = Some(self.scan_next());
        }
        self.cached_next
    }

    /// The level an event at `time` belongs to, relative to the cursor:
    /// the lowest level whose slot-index path matches the cursor's.
    fn level_of(&self, time: u64) -> Option<usize> {
        (0..LEVELS).find(|&lvl| (time >> (BITS * (lvl + 1))) == (self.cursor >> (BITS * (lvl + 1))))
    }

    /// Files an entry into its wheel slot (or the overflow heap).
    fn insert_wheel(&mut self, e: WheelEntry<T>) {
        match self.level_of(e.time) {
            Some(lvl) => {
                let idx = ((e.time >> (BITS * lvl)) & (SLOTS as u64 - 1)) as usize;
                self.slots[lvl * SLOTS + idx].push(e);
                self.occupied[lvl] |= 1 << idx;
            }
            None => self.overflow.push(FarEntry(e)),
        }
    }

    /// Moves the first pending slot's events into `current`, cascading
    /// coarser slots as the cursor crosses their boundaries. Returns
    /// false when the queue is empty.
    fn advance(&mut self) -> bool {
        if self.len == 0 {
            return false;
        }
        loop {
            // Level 0: every stored event of this level lies in the
            // cursor's 64-tick window at index ≥ the cursor's offset.
            let off0 = (self.cursor & (SLOTS as u64 - 1)) as u32;
            let m0 = self.occupied[0] & (!0u64 << off0);
            if m0 != 0 {
                let idx = m0.trailing_zeros() as u64;
                self.cursor = (self.cursor & !(SLOTS as u64 - 1)) + idx;
                self.load_slot(idx as usize);
                return true;
            }
            // Climb: cascade the nearest future slot of the lowest
            // non-empty level into finer levels.
            let mut climbed = false;
            for lvl in 1..LEVELS {
                let shift = BITS * lvl;
                let off = ((self.cursor >> shift) & (SLOTS as u64 - 1)) as u32;
                // Strictly beyond the cursor's own slot: events sharing
                // it live at finer levels by construction.
                let m = if off >= (SLOTS - 1) as u32 {
                    0
                } else {
                    self.occupied[lvl] & (!0u64 << (off + 1))
                };
                if m != 0 {
                    let j = m.trailing_zeros() as usize;
                    let window = BITS * (lvl + 1);
                    self.cursor = ((self.cursor >> window) << window) | ((j as u64) << shift);
                    self.cascade(lvl, j);
                    climbed = true;
                    break;
                }
            }
            if climbed {
                continue;
            }
            // Wheel exhausted: refill from the overflow heap, whose
            // events all lie in later top-level windows.
            if let Some(top) = self.overflow.peek() {
                self.cursor = top.0.time;
                while let Some(far) = self.overflow.peek() {
                    if (far.0.time >> WINDOW_SHIFT) == (self.cursor >> WINDOW_SHIFT) {
                        let FarEntry(e) = self.overflow.pop().expect("peeked");
                        self.insert_wheel(e);
                    } else {
                        break;
                    }
                }
                continue;
            }
            debug_assert!(false, "len={} but no event found", self.len);
            return false;
        }
    }

    /// Loads level-0 slot `idx` (the cursor's tick) into `current`.
    fn load_slot(&mut self, idx: usize) {
        let mut v = std::mem::take(&mut self.slots[idx]);
        self.occupied[0] &= !(1 << idx);
        v.sort_unstable_by_key(|e| e.seq);
        debug_assert!(v.iter().all(|e| e.time == self.cursor));
        self.current.extend(v.drain(..));
        self.slots[idx] = v; // keep the allocation for reuse
        self.current_time = self.cursor;
    }

    /// Redistributes level `lvl` slot `j` into finer levels; the cursor
    /// has just entered the slot's span.
    fn cascade(&mut self, lvl: usize, j: usize) {
        let i = lvl * SLOTS + j;
        let mut v = std::mem::take(&mut self.slots[i]);
        self.occupied[lvl] &= !(1 << j);
        for e in v.drain(..) {
            self.insert_wheel(e);
        }
        self.slots[i] = v;
    }

    /// Non-mutating scan for the earliest queued time. Levels partition
    /// future time into disjoint, ascending ranges (level 0 covers the
    /// rest of the cursor's 64-window, level 1 the rest of its
    /// 64²-window, …, overflow everything past the top window), so the
    /// first non-empty source is authoritative; only within a coarse
    /// slot do we take a min over its (soon-to-cascade) entries.
    fn scan_next(&self) -> u64 {
        let off0 = (self.cursor & (SLOTS as u64 - 1)) as u32;
        let m0 = self.occupied[0] & (!0u64 << off0);
        if m0 != 0 {
            return (self.cursor & !(SLOTS as u64 - 1)) + m0.trailing_zeros() as u64;
        }
        for lvl in 1..LEVELS {
            let shift = BITS * lvl;
            let off = ((self.cursor >> shift) & (SLOTS as u64 - 1)) as u32;
            let m = if off >= (SLOTS - 1) as u32 {
                0
            } else {
                self.occupied[lvl] & (!0u64 << (off + 1))
            };
            if m != 0 {
                let j = m.trailing_zeros() as usize;
                return self.slots[lvl * SLOTS + j]
                    .iter()
                    .map(|e| e.time)
                    .min()
                    .expect("occupancy bit set on empty slot");
            }
        }
        self.overflow.peek().expect("len > 0 but wheel empty").0.time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimingWheel::new();
        w.push(100, 0, 'a');
        w.push(50, 1, 'b');
        w.push(100, 2, 'c');
        w.push(50, 3, 'd');
        let order: Vec<char> = std::iter::from_fn(|| w.pop().map(|e| e.item)).collect();
        assert_eq!(order, vec!['b', 'd', 'a', 'c']);
    }

    #[test]
    fn same_tick_push_during_drain_pops_after_pending() {
        let mut w = TimingWheel::new();
        w.push(10, 0, 0);
        w.push(10, 1, 1);
        assert_eq!(w.pop().unwrap().item, 0);
        // A zero-delay reschedule lands behind the pending same-tick event.
        w.push(10, 2, 2);
        assert_eq!(w.pop().unwrap().item, 1);
        assert_eq!(w.pop().unwrap().item, 2);
        assert!(w.is_empty());
    }

    #[test]
    fn crosses_level_boundaries_in_order() {
        let mut w = TimingWheel::new();
        // One event per level span, pushed out of order.
        let times = [64_u64.pow(3) + 3, 7, 64 + 1, 64_u64.pow(2) + 9, 64_u64.pow(4) + 5];
        for (s, &t) in times.iter().enumerate() {
            w.push(t, s as u64, t);
        }
        let mut sorted = times.to_vec();
        sorted.sort_unstable();
        let popped: Vec<u64> = std::iter::from_fn(|| w.pop().map(|e| e.item)).collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn peek_matches_pop_and_does_not_disturb() {
        let mut w = TimingWheel::new();
        for (s, t) in [900_u64, 3, 70, 64 * 64 + 2, 20_000_000].into_iter().enumerate() {
            w.push(t, s as u64, ());
        }
        while !w.is_empty() {
            let t = w.peek_time().expect("non-empty");
            assert_eq!(w.peek_time(), Some(t), "peek is stable");
            let e = w.pop().expect("non-empty");
            assert_eq!(e.time, t, "peek agrees with pop");
        }
        assert_eq!(w.peek_time(), None);
    }

    #[test]
    fn push_below_cached_peek_updates_peek() {
        let mut w = TimingWheel::new();
        w.push(500, 0, ());
        assert_eq!(w.peek_time(), Some(500));
        w.push(200, 1, ());
        assert_eq!(w.peek_time(), Some(200));
    }

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        let mut w = TimingWheel::new();
        let far = 64_u64.pow(4) * 3 + 17;
        w.push(far, 0, "far");
        w.push(far + 1, 1, "farther");
        w.push(2, 2, "near");
        assert_eq!(w.pop().unwrap().item, "near");
        assert_eq!(w.pop().unwrap().item, "far");
        assert_eq!(w.pop().unwrap().item, "farther");
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        // Deterministic pseudo-random schedule without an RNG: an LCG.
        let mut w = TimingWheel::new();
        let mut reference: Vec<(u64, u64)> = Vec::new();
        let mut x: u64 = 0x2545F4914F6CDD1D;
        let mut seq = 0u64;
        let mut now = 0u64;
        for round in 0..2_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let t = now + (x >> 33) % 10_000;
            w.push(t, seq, (t, seq));
            reference.push((t, seq));
            seq += 1;
            if round % 3 == 0 {
                let e = w.pop().expect("pushed at least one");
                now = e.time;
                reference.sort_unstable();
                let want = reference.remove(0);
                assert_eq!((e.time, e.seq), want);
            }
        }
        reference.sort_unstable();
        for want in reference {
            let e = w.pop().expect("drain");
            assert_eq!((e.time, e.seq), want);
        }
        assert!(w.pop().is_none());
    }
}
