//! Identifiers for simulated entities.

use std::fmt;

/// Identifies an actor (a process) in a [`crate::World`].
///
/// Node ids are assigned densely, in insertion order, starting at zero.
/// Both replica servers and clients are actors and therefore have node ids.
///
/// # Examples
///
/// ```
/// use repl_sim::NodeId;
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(n.to_string(), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw index as `u32`.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Creates a node id from a `usize` index, panicking if the index
    /// does not fit — a checked replacement for `as u32` truncation on
    /// paths where actor counts are caller-controlled.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    pub fn from_index(index: usize) -> Self {
        let raw = u32::try_from(index)
            .unwrap_or_else(|_| panic!("node index {index} exceeds the u32 id space"));
        NodeId(raw)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a timer registered with the scheduler.
///
/// Timer ids are unique for the lifetime of a [`crate::World`]; cancelling a
/// timer prevents its callback from firing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

impl TimerId {
    /// Returns the raw id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::new(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n.raw(), 42);
    }

    #[test]
    fn from_index_accepts_the_u32_boundary() {
        assert_eq!(NodeId::from_index(0), NodeId::new(0));
        assert_eq!(NodeId::from_index(u32::MAX as usize), NodeId::new(u32::MAX));
    }

    #[test]
    #[should_panic(expected = "exceeds the u32 id space")]
    fn from_index_rejects_past_the_boundary() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn node_id_ordering() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(5), NodeId::new(5));
    }

    #[test]
    fn timer_id_display() {
        assert_eq!(TimerId(9).to_string(), "timer9");
        assert_eq!(TimerId(9).raw(), 9);
    }
}
