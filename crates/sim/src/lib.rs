//! # repl-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate on which the replication techniques of
//! *Understanding Replication in Databases and Distributed Systems*
//! (Wiesmann et al., ICDCS 2000) are reproduced. It provides:
//!
//! * a virtual clock ([`SimTime`], [`SimDuration`]) and a deterministic
//!   event queue,
//! * an [`Actor`] model for simulated processes,
//! * a [`Network`] model with latency, jitter, FIFO links, loss and
//!   partitions,
//! * scheduled fault injection: crashes, recoveries and [`NetFault`]s
//!   (partitions/heals, directional link drops, latency spikes) at
//!   arbitrary virtual times,
//! * a [`TraceLog`] from which the paper's phase diagrams are regenerated,
//! * [`Metrics`] and [`LatencyStats`] for the performance study.
//!
//! Runs are fully deterministic: the same [`SimConfig`] (seed) and actor
//! set produce the same trace, byte-for-byte.
//!
//! # Examples
//!
//! ```
//! use repl_sim::*;
//!
//! #[derive(Clone, Debug)]
//! struct Hello;
//! impl Message for Hello {}
//!
//! struct Greeter { got: bool }
//! impl Actor<Hello> for Greeter {
//!     fn on_message(&mut self, _ctx: &mut Context<'_, Hello>, _from: NodeId, _msg: Hello) {
//!         self.got = true;
//!     }
//!     impl_as_any!();
//! }
//! struct Sender { to: NodeId }
//! impl Actor<Hello> for Sender {
//!     fn on_start(&mut self, ctx: &mut Context<'_, Hello>) {
//!         ctx.send(self.to, Hello);
//!     }
//!     fn on_message(&mut self, _: &mut Context<'_, Hello>, _: NodeId, _: Hello) {}
//!     impl_as_any!();
//! }
//!
//! let mut world = World::new(SimConfig::new(7));
//! let g = world.add_actor(Box::new(Greeter { got: false }));
//! world.add_actor(Box::new(Sender { to: g }));
//! world.start();
//! world.run_to_quiescence(SimTime::from_ticks(1_000));
//! assert!(world.actor_ref::<Greeter>(g).got);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod ids;
mod metrics;
mod network;
mod objectstore;
mod time;
mod trace;
mod wheel;
mod world;

pub use actor::{Actor, Message};
pub use ids::{NodeId, TimerId};
pub use metrics::{LatencyHistogram, LatencyStats, Metrics};
pub use wheel::{TimingWheel, WheelEntry};
pub use network::{Delivery, LinkQuality, NetFault, Network, NetworkConfig};
pub use objectstore::{ObjectStore, ObjectStoreConfig};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, TraceLog, TraceRecord};
pub use world::{Context, SimConfig, World};
