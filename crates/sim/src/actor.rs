//! The actor abstraction: every simulated process (replica server, client,
//! sequencer, …) implements [`Actor`].

use std::any::Any;

use crate::ids::{NodeId, TimerId};
use crate::time::SimTime;
use crate::world::Context;

/// A message exchanged between actors.
///
/// `wire_size` feeds the byte counters used by the message-cost experiments;
/// the default of 64 bytes approximates a small control message with headers.
///
/// # Examples
///
/// ```
/// use repl_sim::Message;
///
/// #[derive(Clone, Debug)]
/// enum Ping { Ping, Pong }
///
/// impl Message for Ping {
///     fn wire_size(&self) -> usize { 16 }
/// }
/// assert_eq!(Ping::Ping.wire_size(), 16);
/// ```
pub trait Message: Clone + std::fmt::Debug + 'static {
    /// Approximate serialized size in bytes, for byte accounting.
    fn wire_size(&self) -> usize {
        64
    }
}

impl Message for () {
    fn wire_size(&self) -> usize {
        1
    }
}
impl Message for u32 {
    fn wire_size(&self) -> usize {
        4
    }
}
impl Message for u64 {
    fn wire_size(&self) -> usize {
        8
    }
}
impl Message for i64 {
    fn wire_size(&self) -> usize {
        8
    }
}
impl Message for String {
    fn wire_size(&self) -> usize {
        self.len() + 8
    }
}

/// A simulated process driven by messages and timers.
///
/// Actors never share memory; all interaction goes through
/// [`Context::send`] and is subject to the network model. The scheduler
/// guarantees the callbacks of a single actor never overlap, so an actor
/// can be written as plain sequential code.
///
/// `as_any`/`as_any_mut` allow the harness to inspect concrete actor state
/// after a run (histories, stores, …) without the kernel knowing the types.
pub trait Actor<M: Message>: 'static {
    /// Called once when the world starts, before any message flows.
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Called for each delivered message.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M);

    /// Called when a timer set through [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _timer: TimerId, _tag: u64) {}

    /// Called when the node crashes. The actor cannot interact with the
    /// world from here; it only gets to observe the time of death.
    fn on_crash(&mut self, _now: SimTime) {}

    /// Called when the node recovers. State is retained across the crash
    /// (crash-recovery with stable storage); protocols that assume
    /// crash-stop simply never schedule a recovery.
    fn on_recover(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Called when the node's storage volume is lost (disaster fault).
    /// Like [`on_crash`](Self::on_crash) the node is down afterwards, but
    /// the actor must additionally discard everything it modeled as living
    /// on the lost volume (WAL, versioned store). The default treats the
    /// disaster as a plain crash — correct for actors with no durable
    /// state, e.g. clients.
    fn on_volume_loss(&mut self, now: SimTime) {
        self.on_crash(now);
    }

    /// Called after every completed interactive callback (`on_start`,
    /// `on_message`, `on_timer`, `on_recover`) while the actor still has
    /// the context. Durability tiers use this to seal and ship log frames
    /// exactly once per event, after the event's full effect is applied.
    /// The default does nothing.
    fn on_settle(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Upcast for post-run inspection.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for post-run inspection.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Implements `as_any`/`as_any_mut` for an actor type.
///
/// # Examples
///
/// ```
/// use repl_sim::{impl_as_any, Actor, Context, Message, NodeId};
///
/// #[derive(Clone, Debug)]
/// struct Msg;
/// impl Message for Msg {}
///
/// struct Echo;
/// impl Actor<Msg> for Echo {
///     fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
///         ctx.send(from, msg);
///     }
///     impl_as_any!();
/// }
/// ```
#[macro_export]
macro_rules! impl_as_any {
    () => {
        fn as_any(&self) -> &dyn ::std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn ::std::any::Any {
            self
        }
    };
}
