//! Aggregate run metrics: message counts, bytes, and latency statistics.

use crate::time::SimDuration;

/// Counters accumulated by the scheduler during a run.
///
/// # Examples
///
/// ```
/// use repl_sim::Metrics;
/// let m = Metrics::default();
/// assert_eq!(m.messages_sent, 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Messages offered to the network (including ones later dropped).
    pub messages_sent: u64,
    /// Messages sent between coordination nodes (both endpoints below
    /// [`crate::SimConfig::coordination_nodes`]) — the server↔server
    /// share of `messages_sent`, i.e. ordering/agreement traffic as
    /// opposed to client request/response traffic. Zero unless the
    /// config names a coordination set.
    pub coordination_messages: u64,
    /// Messages actually handed to an actor.
    pub messages_delivered: u64,
    /// Messages lost to the network, partitions, or dead destinations.
    pub messages_dropped: u64,
    /// Total payload bytes sent.
    pub bytes_sent: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Events processed in total.
    pub events_processed: u64,
    /// Node crashes applied (scheduled crashes of live nodes).
    pub crashes_injected: u64,
    /// Node recoveries applied (scheduled recoveries of crashed nodes).
    pub recoveries_injected: u64,
    /// Volume-loss disasters applied (node down with local storage wiped).
    pub volume_losses: u64,
    /// Partitions installed (each `Partition` fault event, including
    /// re-partitions while one is already active).
    pub partitions_started: u64,
    /// Partition heals applied.
    pub partitions_healed: u64,
    /// Link faults applied (severed or degraded links).
    pub link_faults_injected: u64,
    /// Link repairs applied (restored links or link quality).
    pub link_faults_repaired: u64,
}

impl Metrics {
    /// Messages sent per delivered message; a crude amplification measure.
    pub fn delivery_ratio(&self) -> f64 {
        if self.messages_sent == 0 {
            0.0
        } else {
            self.messages_delivered as f64 / self.messages_sent as f64
        }
    }

    /// Total disruptive fault events applied: crashes, volume losses,
    /// partitions and link faults (repairs and recoveries are not
    /// counted).
    pub fn faults_injected(&self) -> u64 {
        self.crashes_injected
            + self.volume_losses
            + self.partitions_started
            + self.link_faults_injected
    }

    /// Total repair events applied: recoveries, heals and link repairs.
    pub fn repairs_applied(&self) -> u64 {
        self.recoveries_injected + self.partitions_healed + self.link_faults_repaired
    }
}

/// Latency sample accumulator with exact percentiles (stores all samples).
///
/// # Examples
///
/// ```
/// use repl_sim::{LatencyStats, SimDuration};
///
/// let mut s = LatencyStats::new();
/// for t in [10, 20, 30, 40, 50] {
///     s.record(SimDuration::from_ticks(t));
/// }
/// assert_eq!(s.count(), 5);
/// assert_eq!(s.mean().ticks(), 30);
/// assert_eq!(s.percentile(0.5).ticks(), 30);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyStats {
    samples: Vec<u64>,
    sorted: bool,
    /// Running extrema, maintained on record/merge so `min`/`max` are
    /// O(1) instead of rescanning every sample per report line.
    min: u64,
    max: u64,
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats::new()
    }
}

impl LatencyStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        LatencyStats {
            samples: Vec::new(),
            sorted: true,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        let t = d.ticks();
        self.min = self.min.min(t);
        self.max = self.max.max(t);
        self.samples.push(t);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns true if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean; zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u128 = self.samples.iter().map(|&s| s as u128).sum();
        SimDuration::from_ticks((sum / self.samples.len() as u128) as u64)
    }

    /// Exact percentile by nearest-rank; `q` in `[0, 1]`. Zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&mut self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "percentile must be in [0,1]");
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).max(1) - 1;
        SimDuration::from_ticks(self.samples[rank.min(self.samples.len() - 1)])
    }

    /// Largest sample; zero when empty. O(1): tracked while recording.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_ticks(if self.samples.is_empty() { 0 } else { self.max })
    }

    /// Smallest sample; zero when empty. O(1): tracked while recording.
    pub fn min(&self) -> SimDuration {
        SimDuration::from_ticks(if self.samples.is_empty() { 0 } else { self.min })
    }

    /// Merges the samples of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// The raw samples in recording order (or sorted order if a
    /// percentile was taken). The order is therefore call-history
    /// dependent — anything that needs a canonical view (digests,
    /// comparisons) must use [`LatencyStats::sorted_samples`] instead.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// The samples in canonical (sorted ascending) order, regardless of
    /// whether a percentile was taken first. This is the view digests
    /// must hash: `samples()` flips from recording order to sorted
    /// order as a side effect of `percentile`, so hashing it directly
    /// makes the digest depend on accessor call order.
    pub fn sorted_samples(&self) -> Vec<u64> {
        let mut v = self.samples.clone();
        if !self.sorted {
            v.sort_unstable();
        }
        v
    }
}

/// Streaming, constant-memory latency histogram (log-bucketed,
/// HdrHistogram-style): the scale path's replacement for the
/// store-every-sample [`LatencyStats`].
///
/// Values 0–63 are exact; larger values bucket by a 6-bit mantissa
/// under their power of two, bounding the relative quantile error by
/// [`LatencyHistogram::MAX_RELATIVE_ERROR`] (1/64 ≈ 1.6 %) while the
/// footprint stays fixed (≈30 KiB) no matter how many samples stream
/// through. Mean, count, min and max are exact. Digest-sensitive
/// small-scale paths keep using [`LatencyStats`] (the exact mode);
/// the open-loop engine records here.
///
/// # Examples
///
/// ```
/// use repl_sim::{LatencyHistogram, SimDuration};
/// let mut h = LatencyHistogram::new();
/// for t in 1..=1000u64 {
///     h.record(SimDuration::from_ticks(t));
/// }
/// assert_eq!(h.count(), 1000);
/// assert_eq!(h.min().ticks(), 1);
/// assert_eq!(h.max().ticks(), 1000);
/// let p50 = h.percentile(0.5).ticks() as f64;
/// assert!((p50 - 500.0).abs() / 500.0 <= LatencyHistogram::MAX_RELATIVE_ERROR);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// 6-bit sub-bucket precision: 64 linear buckets per power of two.
const SUB_BITS: u32 = 6;
/// Buckets: 64 exact values + 64 sub-buckets for each exponent 6..63.
const BUCKETS: usize = 64 + 58 * 64;

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// Worst-case relative error of a percentile estimate: one part in
    /// 2⁶ (the sub-bucket width over the bucket's lower bound).
    pub const MAX_RELATIVE_ERROR: f64 = 1.0 / 64.0;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index of a tick value.
    fn index_of(t: u64) -> usize {
        if t < 64 {
            return t as usize;
        }
        let exp = 63 - t.leading_zeros(); // ≥ 6
        let sub = ((t >> (exp - SUB_BITS)) & 63) as usize;
        64 + ((exp - SUB_BITS) as usize) * 64 + sub
    }

    /// The lower bound of bucket `idx` — the value a percentile falling
    /// in this bucket reports.
    fn value_of(idx: usize) -> u64 {
        if idx < 64 {
            return idx as u64;
        }
        let exp = SUB_BITS as usize + (idx - 64) / 64;
        let sub = ((idx - 64) % 64) as u64;
        (64 + sub) << (exp - SUB_BITS as usize)
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        let t = d.ticks();
        self.counts[Self::index_of(t)] += 1;
        self.count += 1;
        self.sum += t as u128;
        self.min = self.min.min(t);
        self.max = self.max.max(t);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns true if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact arithmetic mean; zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_ticks((self.sum / self.count as u128) as u64)
    }

    /// Exact smallest sample; zero when empty.
    pub fn min(&self) -> SimDuration {
        SimDuration::from_ticks(if self.count == 0 { 0 } else { self.min })
    }

    /// Exact largest sample; zero when empty.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_ticks(if self.count == 0 { 0 } else { self.max })
    }

    /// Nearest-rank percentile estimate, `q` in `[0, 1]`; zero when
    /// empty. Off from the exact sample percentile by at most
    /// [`LatencyHistogram::MAX_RELATIVE_ERROR`] relative (exact below
    /// 64 ticks).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "percentile must be in [0,1]");
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return SimDuration::from_ticks(Self::value_of(idx));
            }
        }
        SimDuration::from_ticks(self.max)
    }

    /// Merges `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The fixed heap footprint of the bucket array, in bytes — the
    /// "constant" in constant-memory.
    pub fn memory_bytes(&self) -> usize {
        self.counts.len() * std::mem::size_of::<u64>()
    }

    /// A 64-bit FNV-1a fingerprint of the histogram's full observable
    /// state (count, sum, extrema, every bucket) — what run digests mix
    /// in. Bucket order is fixed, so the fingerprint is canonical.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        mix(self.count);
        mix(self.sum as u64);
        mix((self.sum >> 64) as u64);
        mix(self.min);
        mix(self.max);
        for &c in &self.counts {
            mix(c);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let mut s = LatencyStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), SimDuration::ZERO);
        assert_eq!(s.percentile(0.99), SimDuration::ZERO);
        assert_eq!(s.max(), SimDuration::ZERO);
        assert_eq!(s.min(), SimDuration::ZERO);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = LatencyStats::new();
        for t in 1..=100u64 {
            s.record(SimDuration::from_ticks(t));
        }
        assert_eq!(s.percentile(0.01).ticks(), 1);
        assert_eq!(s.percentile(0.5).ticks(), 50);
        assert_eq!(s.percentile(0.99).ticks(), 99);
        assert_eq!(s.percentile(1.0).ticks(), 100);
        assert_eq!(s.min().ticks(), 1);
        assert_eq!(s.max().ticks(), 100);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyStats::new();
        a.record(SimDuration::from_ticks(10));
        let mut b = LatencyStats::new();
        b.record(SimDuration::from_ticks(30));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean().ticks(), 20);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn bad_percentile_panics() {
        let mut s = LatencyStats::new();
        s.record(SimDuration::from_ticks(1));
        let _ = s.percentile(1.5);
    }

    #[test]
    fn sorted_samples_is_call_order_independent() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        for t in [50u64, 10, 40, 20, 30] {
            a.record(SimDuration::from_ticks(t));
            b.record(SimDuration::from_ticks(t));
        }
        let _ = b.percentile(0.5); // sorts b's samples in place
        assert_ne!(a.samples(), b.samples(), "raw view depends on call order");
        assert_eq!(a.sorted_samples(), b.sorted_samples(), "canonical view does not");
    }

    #[test]
    fn running_min_max_match_rescans() {
        let mut s = LatencyStats::new();
        for t in [9u64, 2, 77, 2, 31] {
            s.record(SimDuration::from_ticks(t));
        }
        assert_eq!(s.min().ticks(), 2);
        assert_eq!(s.max().ticks(), 77);
        let mut other = LatencyStats::new();
        other.record(SimDuration::from_ticks(1));
        other.record(SimDuration::from_ticks(100));
        s.merge(&other);
        assert_eq!(s.min().ticks(), 1);
        assert_eq!(s.max().ticks(), 100);
    }

    #[test]
    fn histogram_is_exact_below_64() {
        let mut h = LatencyHistogram::new();
        let mut exact = LatencyStats::new();
        for t in [0u64, 1, 5, 17, 63, 63, 40] {
            h.record(SimDuration::from_ticks(t));
            exact.record(SimDuration::from_ticks(t));
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.percentile(q), exact.percentile(q), "q={q}");
        }
        assert_eq!(h.mean(), exact.mean());
        assert_eq!(h.min(), exact.min());
        assert_eq!(h.max(), exact.max());
    }

    #[test]
    fn histogram_percentiles_have_bounded_relative_error() {
        let mut h = LatencyHistogram::new();
        let mut exact = LatencyStats::new();
        // A skewed spread across several powers of two.
        let mut x: u64 = 12345;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let t = (x >> 40) * ((x >> 60) + 1);
            h.record(SimDuration::from_ticks(t));
            exact.record(SimDuration::from_ticks(t));
        }
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            let e = exact.percentile(q).ticks() as f64;
            let a = h.percentile(q).ticks() as f64;
            assert!(
                (e - a).abs() <= e * LatencyHistogram::MAX_RELATIVE_ERROR + 1.0,
                "q={q}: exact={e} approx={a}"
            );
        }
    }

    #[test]
    fn histogram_merge_matches_single_stream() {
        let mut all = LatencyHistogram::new();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for t in 0..1000u64 {
            all.record(SimDuration::from_ticks(t * 7));
            if t % 2 == 0 {
                a.record(SimDuration::from_ticks(t * 7));
            } else {
                b.record(SimDuration::from_ticks(t * 7));
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.mean(), all.mean());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for q in [0.1, 0.5, 0.99] {
            assert_eq!(a.percentile(q), all.percentile(q));
        }
    }

    #[test]
    fn histogram_memory_is_constant() {
        let mut h = LatencyHistogram::new();
        let before = h.memory_bytes();
        for t in 0..100_000u64 {
            h.record(SimDuration::from_ticks(t * 13));
        }
        assert_eq!(h.memory_bytes(), before);
        assert!(before < 64 * 1024, "footprint stays tens of KiB");
    }

    #[test]
    fn delivery_ratio() {
        let m = Metrics {
            messages_sent: 10,
            messages_delivered: 8,
            ..Metrics::default()
        };
        assert!((m.delivery_ratio() - 0.8).abs() < 1e-9);
        assert_eq!(Metrics::default().delivery_ratio(), 0.0);
    }

    #[test]
    fn fault_counters_sum() {
        let m = Metrics {
            crashes_injected: 2,
            recoveries_injected: 1,
            partitions_started: 1,
            partitions_healed: 1,
            link_faults_injected: 3,
            link_faults_repaired: 2,
            ..Metrics::default()
        };
        assert_eq!(m.faults_injected(), 6);
        assert_eq!(m.repairs_applied(), 4);
        assert_eq!(Metrics::default().faults_injected(), 0);
    }
}
