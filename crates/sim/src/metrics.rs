//! Aggregate run metrics: message counts, bytes, and latency statistics.

use crate::time::SimDuration;

/// Counters accumulated by the scheduler during a run.
///
/// # Examples
///
/// ```
/// use repl_sim::Metrics;
/// let m = Metrics::default();
/// assert_eq!(m.messages_sent, 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Messages offered to the network (including ones later dropped).
    pub messages_sent: u64,
    /// Messages sent between coordination nodes (both endpoints below
    /// [`crate::SimConfig::coordination_nodes`]) — the server↔server
    /// share of `messages_sent`, i.e. ordering/agreement traffic as
    /// opposed to client request/response traffic. Zero unless the
    /// config names a coordination set.
    pub coordination_messages: u64,
    /// Messages actually handed to an actor.
    pub messages_delivered: u64,
    /// Messages lost to the network, partitions, or dead destinations.
    pub messages_dropped: u64,
    /// Total payload bytes sent.
    pub bytes_sent: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Events processed in total.
    pub events_processed: u64,
    /// Node crashes applied (scheduled crashes of live nodes).
    pub crashes_injected: u64,
    /// Node recoveries applied (scheduled recoveries of crashed nodes).
    pub recoveries_injected: u64,
    /// Volume-loss disasters applied (node down with local storage wiped).
    pub volume_losses: u64,
    /// Partitions installed (each `Partition` fault event, including
    /// re-partitions while one is already active).
    pub partitions_started: u64,
    /// Partition heals applied.
    pub partitions_healed: u64,
    /// Link faults applied (severed or degraded links).
    pub link_faults_injected: u64,
    /// Link repairs applied (restored links or link quality).
    pub link_faults_repaired: u64,
}

impl Metrics {
    /// Messages sent per delivered message; a crude amplification measure.
    pub fn delivery_ratio(&self) -> f64 {
        if self.messages_sent == 0 {
            0.0
        } else {
            self.messages_delivered as f64 / self.messages_sent as f64
        }
    }

    /// Total disruptive fault events applied: crashes, volume losses,
    /// partitions and link faults (repairs and recoveries are not
    /// counted).
    pub fn faults_injected(&self) -> u64 {
        self.crashes_injected
            + self.volume_losses
            + self.partitions_started
            + self.link_faults_injected
    }

    /// Total repair events applied: recoveries, heals and link repairs.
    pub fn repairs_applied(&self) -> u64 {
        self.recoveries_injected + self.partitions_healed + self.link_faults_repaired
    }
}

/// Latency sample accumulator with exact percentiles (stores all samples).
///
/// # Examples
///
/// ```
/// use repl_sim::{LatencyStats, SimDuration};
///
/// let mut s = LatencyStats::new();
/// for t in [10, 20, 30, 40, 50] {
///     s.record(SimDuration::from_ticks(t));
/// }
/// assert_eq!(s.count(), 5);
/// assert_eq!(s.mean().ticks(), 30);
/// assert_eq!(s.percentile(0.5).ticks(), 30);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<u64>,
    sorted: bool,
}

impl LatencyStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        LatencyStats {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.ticks());
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns true if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean; zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u128 = self.samples.iter().map(|&s| s as u128).sum();
        SimDuration::from_ticks((sum / self.samples.len() as u128) as u64)
    }

    /// Exact percentile by nearest-rank; `q` in `[0, 1]`. Zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&mut self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "percentile must be in [0,1]");
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).max(1) - 1;
        SimDuration::from_ticks(self.samples[rank.min(self.samples.len() - 1)])
    }

    /// Largest sample; zero when empty.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_ticks(self.samples.iter().copied().max().unwrap_or(0))
    }

    /// Smallest sample; zero when empty.
    pub fn min(&self) -> SimDuration {
        SimDuration::from_ticks(self.samples.iter().copied().min().unwrap_or(0))
    }

    /// Merges the samples of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// The raw samples in recording order (or sorted order if a
    /// percentile was taken). Exposed so report digests can hash the
    /// full sample set rather than summary statistics.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let mut s = LatencyStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), SimDuration::ZERO);
        assert_eq!(s.percentile(0.99), SimDuration::ZERO);
        assert_eq!(s.max(), SimDuration::ZERO);
        assert_eq!(s.min(), SimDuration::ZERO);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = LatencyStats::new();
        for t in 1..=100u64 {
            s.record(SimDuration::from_ticks(t));
        }
        assert_eq!(s.percentile(0.01).ticks(), 1);
        assert_eq!(s.percentile(0.5).ticks(), 50);
        assert_eq!(s.percentile(0.99).ticks(), 99);
        assert_eq!(s.percentile(1.0).ticks(), 100);
        assert_eq!(s.min().ticks(), 1);
        assert_eq!(s.max().ticks(), 100);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyStats::new();
        a.record(SimDuration::from_ticks(10));
        let mut b = LatencyStats::new();
        b.record(SimDuration::from_ticks(30));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean().ticks(), 20);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn bad_percentile_panics() {
        let mut s = LatencyStats::new();
        s.record(SimDuration::from_ticks(1));
        let _ = s.percentile(1.5);
    }

    #[test]
    fn delivery_ratio() {
        let m = Metrics {
            messages_sent: 10,
            messages_delivered: 8,
            ..Metrics::default()
        };
        assert!((m.delivery_ratio() - 0.8).abs() < 1e-9);
        assert_eq!(Metrics::default().delivery_ratio(), 0.0);
    }

    #[test]
    fn fault_counters_sum() {
        let m = Metrics {
            crashes_injected: 2,
            recoveries_injected: 1,
            partitions_started: 1,
            partitions_healed: 1,
            link_faults_injected: 3,
            link_faults_repaired: 2,
            ..Metrics::default()
        };
        assert_eq!(m.faults_injected(), 6);
        assert_eq!(m.repairs_applied(), 4);
        assert_eq!(Metrics::default().faults_injected(), 0);
    }
}
