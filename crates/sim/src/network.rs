//! Network model: latency, jitter, FIFO links, message loss and partitions.
//!
//! The model is deliberately simple — the taxonomy this simulator serves is
//! about *message patterns*, not wire-level detail — but it captures the
//! assumptions the replication literature leans on:
//!
//! * per-link latency = `base + U(0, jitter)` drawn from the seeded RNG,
//! * optional FIFO links (delivery order per (src, dst) pair matches send
//!   order), which primary-backup replication requires,
//! * independent message loss with probability `drop_prob`,
//! * dynamic partitions: messages crossing a partition boundary are dropped.

use std::collections::{HashMap, HashSet};

use rand::Rng;

use crate::ids::NodeId;
use crate::time::{SimDuration, SimTime};

/// Static configuration of the network model.
///
/// # Examples
///
/// ```
/// use repl_sim::{NetworkConfig, SimDuration};
///
/// let net = NetworkConfig::lan();
/// assert!(net.base_latency > SimDuration::ZERO);
/// assert_eq!(net.drop_prob, 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Fixed one-way latency component applied to every message.
    pub base_latency: SimDuration,
    /// Upper bound of the uniformly distributed jitter added to each message.
    pub jitter: SimDuration,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_prob: f64,
    /// When true, deliveries on each (src, dst) link never reorder.
    pub fifo_links: bool,
}

impl NetworkConfig {
    /// A local-area network profile: 100-tick base latency, 20-tick jitter,
    /// no loss, FIFO links. This is the default profile used by the
    /// replication experiments.
    pub fn lan() -> Self {
        NetworkConfig {
            base_latency: SimDuration::from_ticks(100),
            jitter: SimDuration::from_ticks(20),
            drop_prob: 0.0,
            fifo_links: true,
        }
    }

    /// A wide-area profile: 5000-tick base latency and 1500-tick jitter.
    pub fn wan() -> Self {
        NetworkConfig {
            base_latency: SimDuration::from_ticks(5_000),
            jitter: SimDuration::from_ticks(1_500),
            drop_prob: 0.0,
            fifo_links: true,
        }
    }

    /// A zero-latency, perfectly reliable network. Useful in unit tests
    /// where message interleaving is irrelevant.
    pub fn instant() -> Self {
        NetworkConfig {
            base_latency: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            drop_prob: 0.0,
            fifo_links: true,
        }
    }

    /// Returns a copy with a different base latency.
    pub fn with_base_latency(mut self, latency: SimDuration) -> Self {
        self.base_latency = latency;
        self
    }

    /// Returns a copy with a different jitter bound.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Returns a copy with a message-loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability must be in [0,1]"
        );
        self.drop_prob = p;
        self
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::lan()
    }
}

/// The outcome of offering a message to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The message will be delivered at the given time.
    At(SimTime),
    /// The message was dropped (loss or partition).
    Dropped,
}

/// Quality degradation of one directed link: a latency spike, extra
/// loss, or both.
///
/// # Examples
///
/// ```
/// use repl_sim::{LinkQuality, SimDuration};
///
/// let q = LinkQuality::latency_spike(SimDuration::from_ticks(5_000));
/// assert_eq!(q.extra_latency.ticks(), 5_000);
/// assert_eq!(q.drop_prob, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkQuality {
    /// Extra one-way latency added on top of the profile latency.
    pub extra_latency: SimDuration,
    /// Extra loss probability in `[0, 1]` applied per message on this link,
    /// independent of the profile's `drop_prob`.
    pub drop_prob: f64,
}

impl LinkQuality {
    /// A pure latency spike: slow but lossless.
    pub fn latency_spike(extra: SimDuration) -> Self {
        LinkQuality {
            extra_latency: extra,
            drop_prob: 0.0,
        }
    }

    /// A lossy link with no extra latency.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn lossy(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability must be in [0,1]"
        );
        LinkQuality {
            extra_latency: SimDuration::ZERO,
            drop_prob: p,
        }
    }
}

/// A network fault (or repair), applicable immediately via
/// [`Network::apply`] or scheduled at a `SimTime` through the world.
///
/// Link faults are *directional*: `LinkDown { src, dst }` kills traffic
/// from `src` to `dst` only, modelling asymmetric failures.
#[derive(Debug, Clone, PartialEq)]
pub enum NetFault {
    /// Partition the network into the given groups (nodes in no group
    /// keep full connectivity, see [`Network::set_partition`]).
    Partition(Vec<Vec<NodeId>>),
    /// Remove all partitions.
    Heal,
    /// Sever the directed link `src → dst`.
    LinkDown {
        /// Source of the severed link.
        src: NodeId,
        /// Destination of the severed link.
        dst: NodeId,
    },
    /// Restore a severed directed link.
    LinkUp {
        /// Source of the restored link.
        src: NodeId,
        /// Destination of the restored link.
        dst: NodeId,
    },
    /// Degrade the directed link `src → dst` (latency spike and/or loss).
    Degrade {
        /// Source of the degraded link.
        src: NodeId,
        /// Destination of the degraded link.
        dst: NodeId,
        /// The degradation applied.
        quality: LinkQuality,
    },
    /// Remove any degradation from the directed link `src → dst`.
    Restore {
        /// Source of the link.
        src: NodeId,
        /// Destination of the link.
        dst: NodeId,
    },
}

impl NetFault {
    /// Short label for traces and summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            NetFault::Partition(_) => "partition",
            NetFault::Heal => "heal",
            NetFault::LinkDown { .. } => "link-down",
            NetFault::LinkUp { .. } => "link-up",
            NetFault::Degrade { .. } => "degrade",
            NetFault::Restore { .. } => "restore",
        }
    }

    /// True for disruptive faults; false for repairs (heal, link-up,
    /// restore).
    pub fn is_disruptive(&self) -> bool {
        matches!(
            self,
            NetFault::Partition(_) | NetFault::LinkDown { .. } | NetFault::Degrade { .. }
        )
    }
}

/// Sentinel partition tag for nodes outside every group.
const NO_GROUP: u32 = u32::MAX;

/// Runtime network state: partition membership and FIFO bookkeeping.
///
/// `offer` sits on the per-message hot path of every simulation, so the
/// per-node and per-link state lives in dense index tables instead of
/// hash maps: partition membership is a `Vec<u32>` indexed by node, FIFO
/// bookkeeping a `stride × stride` matrix indexed by `(src, dst)`. The
/// rarely-populated fault state (severed and degraded links) stays in
/// hash containers but is gated behind `is_empty` checks so the
/// fault-free fast path never touches them.
#[derive(Debug)]
pub struct Network {
    config: NetworkConfig,
    /// Partition group tag per node (dense); [`NO_GROUP`] means the node
    /// is in no group and talks to everyone. Nodes beyond the vector's
    /// length are implicitly [`NO_GROUP`].
    group_of: Vec<u32>,
    /// Fast flag: true while any partition is installed.
    partitioned: bool,
    /// Row stride of `fifo_last` (max node index + 1, grown on demand).
    fifo_stride: usize,
    /// Last scheduled delivery time per (src, dst), dense
    /// `src * fifo_stride + dst`, for FIFO enforcement.
    fifo_last: Vec<SimTime>,
    /// Links that are forced down regardless of partition groups.
    severed: HashSet<(NodeId, NodeId)>,
    /// Per-link quality degradations (latency spikes, extra loss).
    degraded: HashMap<(NodeId, NodeId), LinkQuality>,
}

impl Network {
    /// Creates a fully connected network with the given configuration.
    pub fn new(config: NetworkConfig) -> Self {
        Network {
            config,
            group_of: Vec::new(),
            partitioned: false,
            fifo_stride: 0,
            fifo_last: Vec::new(),
            severed: HashSet::new(),
            degraded: HashMap::new(),
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Pre-sizes the dense per-node tables for `nodes` nodes, so the hot
    /// path never grows them mid-run. Called by the world on start;
    /// harmless to skip (tables grow on demand).
    pub fn reserve_nodes(&mut self, nodes: usize) {
        if nodes > self.fifo_stride {
            self.grow_fifo(nodes);
        }
        if nodes > self.group_of.len() {
            self.group_of.resize(nodes, NO_GROUP);
        }
    }

    /// Grows the FIFO matrix to at least `need × need`, preserving
    /// existing link state.
    fn grow_fifo(&mut self, need: usize) {
        let new_stride = need.next_power_of_two().max(8);
        let mut new = vec![SimTime::ZERO; new_stride * new_stride];
        for s in 0..self.fifo_stride {
            for d in 0..self.fifo_stride {
                new[s * new_stride + d] = self.fifo_last[s * self.fifo_stride + d];
            }
        }
        self.fifo_stride = new_stride;
        self.fifo_last = new;
    }

    /// Partitions the network into the given groups. Nodes not mentioned in
    /// any group keep full connectivity with every group (they are treated
    /// as being in all groups — useful for observers).
    pub fn set_partition(&mut self, groups: &[&[NodeId]]) {
        self.group_of.fill(NO_GROUP);
        self.partitioned = false;
        for (gi, group) in groups.iter().enumerate() {
            for &n in group.iter() {
                if n.index() >= self.group_of.len() {
                    self.group_of.resize(n.index() + 1, NO_GROUP);
                }
                self.group_of[n.index()] = gi as u32;
                self.partitioned = true;
            }
        }
    }

    /// Removes all partitions, restoring full connectivity.
    pub fn heal_partition(&mut self) {
        self.group_of.fill(NO_GROUP);
        self.partitioned = false;
    }

    /// Severs the directed link from `src` to `dst`.
    pub fn sever_link(&mut self, src: NodeId, dst: NodeId) {
        self.severed.insert((src, dst));
    }

    /// Restores a previously severed link.
    pub fn restore_link(&mut self, src: NodeId, dst: NodeId) {
        self.severed.remove(&(src, dst));
    }

    /// [`Network::set_partition`] over owned groups, as produced by fault
    /// plans.
    pub fn set_partition_groups(&mut self, groups: &[Vec<NodeId>]) {
        self.group_of.fill(NO_GROUP);
        self.partitioned = false;
        for (gi, group) in groups.iter().enumerate() {
            for &n in group.iter() {
                if n.index() >= self.group_of.len() {
                    self.group_of.resize(n.index() + 1, NO_GROUP);
                }
                self.group_of[n.index()] = gi as u32;
                self.partitioned = true;
            }
        }
    }

    /// Degrades the directed link `src → dst`: subsequent messages pay
    /// `quality.extra_latency` and face `quality.drop_prob` extra loss.
    /// Replaces any previous degradation of the link.
    ///
    /// # Panics
    ///
    /// Panics if `quality.drop_prob` is not within `[0, 1]`.
    pub fn degrade_link(&mut self, src: NodeId, dst: NodeId, quality: LinkQuality) {
        assert!(
            (0.0..=1.0).contains(&quality.drop_prob),
            "drop probability must be in [0,1]"
        );
        self.degraded.insert((src, dst), quality);
    }

    /// Removes any degradation from the directed link `src → dst`.
    pub fn restore_link_quality(&mut self, src: NodeId, dst: NodeId) {
        self.degraded.remove(&(src, dst));
    }

    /// The current degradation of the directed link, if any.
    pub fn link_quality(&self, src: NodeId, dst: NodeId) -> Option<LinkQuality> {
        self.degraded.get(&(src, dst)).copied()
    }

    /// Applies a [`NetFault`] to the runtime state.
    pub fn apply(&mut self, fault: &NetFault) {
        match fault {
            NetFault::Partition(groups) => self.set_partition_groups(groups),
            NetFault::Heal => self.heal_partition(),
            NetFault::LinkDown { src, dst } => self.sever_link(*src, *dst),
            NetFault::LinkUp { src, dst } => self.restore_link(*src, *dst),
            NetFault::Degrade { src, dst, quality } => self.degrade_link(*src, *dst, *quality),
            NetFault::Restore { src, dst } => self.restore_link_quality(*src, *dst),
        }
    }

    /// Returns true if a message from `src` can currently reach `dst`.
    pub fn connected(&self, src: NodeId, dst: NodeId) -> bool {
        if !self.severed.is_empty() && self.severed.contains(&(src, dst)) {
            return false;
        }
        if !self.partitioned {
            return true;
        }
        let tag = |n: NodeId| self.group_of.get(n.index()).copied().unwrap_or(NO_GROUP);
        let (a, b) = (tag(src), tag(dst));
        // Nodes outside every partition group talk to everyone.
        a == NO_GROUP || b == NO_GROUP || a == b
    }

    /// Computes the delivery schedule for a message sent at `now`.
    ///
    /// Loopback messages (src == dst) are delivered after one tick and are
    /// never lost: an actor can always talk to itself.
    ///
    /// Dropped messages (loss, partition, severed link) never touch the
    /// FIFO bookkeeping, so a drop cannot wedge or delay later deliveries
    /// on the same link — traffic resumes normally after a heal.
    pub fn offer<R: Rng>(
        &mut self,
        rng: &mut R,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
    ) -> Delivery {
        if src == dst {
            return Delivery::At(now + SimDuration::from_ticks(1));
        }
        // Fault checks are gated so the fault-free fast path (the common
        // case for the whole performance study) touches no hash containers.
        if (self.partitioned || !self.severed.is_empty()) && !self.connected(src, dst) {
            return Delivery::Dropped;
        }
        if self.config.drop_prob > 0.0 && rng.gen::<f64>() < self.config.drop_prob {
            return Delivery::Dropped;
        }
        let mut spike = SimDuration::ZERO;
        if !self.degraded.is_empty() {
            if let Some(q) = self.degraded.get(&(src, dst)).copied() {
                if q.drop_prob > 0.0 && rng.gen::<f64>() < q.drop_prob {
                    return Delivery::Dropped;
                }
                spike = q.extra_latency;
            }
        }
        let jitter = if self.config.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_ticks(rng.gen_range(0..=self.config.jitter.ticks()))
        };
        let mut at = now + self.config.base_latency + jitter + spike;
        if self.config.fifo_links {
            let need = src.index().max(dst.index()) + 1;
            if need > self.fifo_stride {
                self.grow_fifo(need);
            }
            let last = &mut self.fifo_last[src.index() * self.fifo_stride + dst.index()];
            if at <= *last {
                at = *last + SimDuration::from_ticks(1);
            }
            *last = at;
        }
        Delivery::At(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn latency_within_bounds() {
        let mut net = Network::new(NetworkConfig::lan());
        let mut r = rng();
        for _ in 0..100 {
            match net.offer(&mut r, SimTime::ZERO, NodeId::new(0), NodeId::new(1)) {
                Delivery::At(t) => {
                    assert!(t.ticks() >= 100, "latency below base: {t}");
                }
                Delivery::Dropped => panic!("lossless network dropped a message"),
            }
        }
    }

    #[test]
    fn fifo_links_never_reorder() {
        let mut net = Network::new(NetworkConfig::lan());
        let mut r = rng();
        let mut last = SimTime::ZERO;
        let mut now = SimTime::ZERO;
        for i in 0..200 {
            now = SimTime::from_ticks(i); // sends spaced 1 tick apart
            match net.offer(&mut r, now, NodeId::new(0), NodeId::new(1)) {
                Delivery::At(t) => {
                    assert!(t > last, "FIFO violated: {t} after {last}");
                    last = t;
                }
                Delivery::Dropped => panic!("unexpected drop"),
            }
        }
        let _ = now;
    }

    #[test]
    fn partition_blocks_cross_group_traffic() {
        let mut net = Network::new(NetworkConfig::lan());
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        net.set_partition(&[&[a], &[b]]);
        assert!(!net.connected(a, b));
        assert!(net.connected(a, a));
        // c is in no group: talks to both sides.
        assert!(net.connected(a, c));
        assert!(net.connected(c, b));
        net.heal_partition();
        assert!(net.connected(a, b));
    }

    #[test]
    fn severed_link_is_directional() {
        let mut net = Network::new(NetworkConfig::lan());
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        net.sever_link(a, b);
        assert!(!net.connected(a, b));
        assert!(net.connected(b, a));
        net.restore_link(a, b);
        assert!(net.connected(a, b));
    }

    #[test]
    fn loopback_is_fast_and_reliable() {
        let mut net = Network::new(NetworkConfig::lan().with_drop_prob(1.0));
        let mut r = rng();
        match net.offer(
            &mut r,
            SimTime::from_ticks(5),
            NodeId::new(3),
            NodeId::new(3),
        ) {
            Delivery::At(t) => assert_eq!(t.ticks(), 6),
            Delivery::Dropped => panic!("loopback dropped"),
        }
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut net = Network::new(NetworkConfig::lan().with_drop_prob(1.0));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(
                net.offer(&mut r, SimTime::ZERO, NodeId::new(0), NodeId::new(1)),
                Delivery::Dropped
            );
        }
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn invalid_drop_prob_rejected() {
        let _ = NetworkConfig::lan().with_drop_prob(1.5);
    }

    #[test]
    fn fifo_state_survives_drops_and_partitions() {
        // Regression: a dropped or partition-blocked message must not wedge
        // later deliveries on the same (src, dst) link.
        let mut net = Network::new(NetworkConfig::lan());
        let mut r = rng();
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        // Establish FIFO state, then partition and send into the void.
        assert!(matches!(
            net.offer(&mut r, SimTime::ZERO, a, b),
            Delivery::At(_)
        ));
        net.set_partition(&[&[a], &[b]]);
        for t in 0..50 {
            assert_eq!(
                net.offer(&mut r, SimTime::from_ticks(t), a, b),
                Delivery::Dropped
            );
        }
        // Heal at t=1000: the next message must go through with normal
        // latency, unaffected by the 50 drops.
        net.heal_partition();
        let sent = SimTime::from_ticks(1_000);
        match net.offer(&mut r, sent, a, b) {
            Delivery::At(t) => {
                assert!(t >= sent + SimDuration::from_ticks(100), "latency too low");
                assert!(
                    t <= sent + SimDuration::from_ticks(120),
                    "drop during partition delayed post-heal delivery: {t}"
                );
            }
            Delivery::Dropped => panic!("healed link dropped a message"),
        }
        // Same through a severed link.
        net.sever_link(a, b);
        assert_eq!(
            net.offer(&mut r, SimTime::from_ticks(1_001), a, b),
            Delivery::Dropped
        );
        net.restore_link(a, b);
        assert!(matches!(
            net.offer(&mut r, SimTime::from_ticks(2_000), a, b),
            Delivery::At(_)
        ));
    }

    #[test]
    fn degraded_link_adds_latency_one_direction_only() {
        let mut net = Network::new(NetworkConfig::lan());
        let mut r = rng();
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        net.degrade_link(
            a,
            b,
            LinkQuality::latency_spike(SimDuration::from_ticks(5_000)),
        );
        match net.offer(&mut r, SimTime::ZERO, a, b) {
            Delivery::At(t) => assert!(t.ticks() >= 5_100, "spike not applied: {t}"),
            Delivery::Dropped => panic!("lossless degraded link dropped"),
        }
        // Reverse direction unaffected.
        match net.offer(&mut r, SimTime::ZERO, b, a) {
            Delivery::At(t) => assert!(t.ticks() <= 120, "reverse direction slowed: {t}"),
            Delivery::Dropped => panic!("unexpected drop"),
        }
        net.restore_link_quality(a, b);
        assert!(net.link_quality(a, b).is_none());
        match net.offer(&mut r, SimTime::from_ticks(6_000), a, b) {
            Delivery::At(t) => assert!(t.ticks() <= 6_120, "restore did not take: {t}"),
            Delivery::Dropped => panic!("unexpected drop"),
        }
    }

    #[test]
    fn fully_lossy_degraded_link_drops_everything() {
        let mut net = Network::new(NetworkConfig::lan());
        let mut r = rng();
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        net.degrade_link(a, b, LinkQuality::lossy(1.0));
        for _ in 0..10 {
            assert_eq!(net.offer(&mut r, SimTime::ZERO, a, b), Delivery::Dropped);
        }
    }

    #[test]
    fn apply_covers_every_fault_kind() {
        let mut net = Network::new(NetworkConfig::lan());
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        net.apply(&NetFault::Partition(vec![vec![a, b], vec![c]]));
        assert!(!net.connected(a, c));
        assert!(net.connected(a, b));
        net.apply(&NetFault::Heal);
        assert!(net.connected(a, c));
        net.apply(&NetFault::LinkDown { src: a, dst: b });
        assert!(!net.connected(a, b));
        net.apply(&NetFault::LinkUp { src: a, dst: b });
        assert!(net.connected(a, b));
        let q = LinkQuality::latency_spike(SimDuration::from_ticks(9));
        net.apply(&NetFault::Degrade {
            src: b,
            dst: c,
            quality: q,
        });
        assert_eq!(net.link_quality(b, c), Some(q));
        net.apply(&NetFault::Restore { src: b, dst: c });
        assert_eq!(net.link_quality(b, c), None);
    }

    #[test]
    fn fault_kinds_and_disruptiveness() {
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let down = NetFault::LinkDown { src: a, dst: b };
        assert_eq!(down.kind(), "link-down");
        assert!(down.is_disruptive());
        assert!(NetFault::Partition(vec![vec![a]]).is_disruptive());
        assert!(!NetFault::Heal.is_disruptive());
        assert!(!NetFault::LinkUp { src: a, dst: b }.is_disruptive());
        assert!(!NetFault::Restore { src: a, dst: b }.is_disruptive());
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn invalid_link_quality_rejected() {
        let mut net = Network::new(NetworkConfig::lan());
        net.degrade_link(
            NodeId::new(0),
            NodeId::new(1),
            LinkQuality {
                extra_latency: SimDuration::ZERO,
                drop_prob: 2.0,
            },
        );
    }
}
