//! Network model: latency, jitter, FIFO links, message loss and partitions.
//!
//! The model is deliberately simple — the taxonomy this simulator serves is
//! about *message patterns*, not wire-level detail — but it captures the
//! assumptions the replication literature leans on:
//!
//! * per-link latency = `base + U(0, jitter)` drawn from the seeded RNG,
//! * optional FIFO links (delivery order per (src, dst) pair matches send
//!   order), which primary-backup replication requires,
//! * independent message loss with probability `drop_prob`,
//! * dynamic partitions: messages crossing a partition boundary are dropped.

use std::collections::{HashMap, HashSet};

use rand::Rng;

use crate::ids::NodeId;
use crate::time::{SimDuration, SimTime};

/// Static configuration of the network model.
///
/// # Examples
///
/// ```
/// use repl_sim::{NetworkConfig, SimDuration};
///
/// let net = NetworkConfig::lan();
/// assert!(net.base_latency > SimDuration::ZERO);
/// assert_eq!(net.drop_prob, 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Fixed one-way latency component applied to every message.
    pub base_latency: SimDuration,
    /// Upper bound of the uniformly distributed jitter added to each message.
    pub jitter: SimDuration,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_prob: f64,
    /// When true, deliveries on each (src, dst) link never reorder.
    pub fifo_links: bool,
}

impl NetworkConfig {
    /// A local-area network profile: 100-tick base latency, 20-tick jitter,
    /// no loss, FIFO links. This is the default profile used by the
    /// replication experiments.
    pub fn lan() -> Self {
        NetworkConfig {
            base_latency: SimDuration::from_ticks(100),
            jitter: SimDuration::from_ticks(20),
            drop_prob: 0.0,
            fifo_links: true,
        }
    }

    /// A wide-area profile: 5000-tick base latency and 1500-tick jitter.
    pub fn wan() -> Self {
        NetworkConfig {
            base_latency: SimDuration::from_ticks(5_000),
            jitter: SimDuration::from_ticks(1_500),
            drop_prob: 0.0,
            fifo_links: true,
        }
    }

    /// A zero-latency, perfectly reliable network. Useful in unit tests
    /// where message interleaving is irrelevant.
    pub fn instant() -> Self {
        NetworkConfig {
            base_latency: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            drop_prob: 0.0,
            fifo_links: true,
        }
    }

    /// Returns a copy with a different base latency.
    pub fn with_base_latency(mut self, latency: SimDuration) -> Self {
        self.base_latency = latency;
        self
    }

    /// Returns a copy with a different jitter bound.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Returns a copy with a message-loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability must be in [0,1]"
        );
        self.drop_prob = p;
        self
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::lan()
    }
}

/// The outcome of offering a message to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The message will be delivered at the given time.
    At(SimTime),
    /// The message was dropped (loss or partition).
    Dropped,
}

/// Runtime network state: partition membership and FIFO bookkeeping.
#[derive(Debug)]
pub struct Network {
    config: NetworkConfig,
    /// Partition group of each node; nodes in different groups cannot talk.
    /// Empty map means fully connected.
    groups: HashMap<NodeId, u32>,
    /// Last scheduled delivery time per (src, dst), for FIFO enforcement.
    last_delivery: HashMap<(NodeId, NodeId), SimTime>,
    /// Links that are forced down regardless of partition groups.
    severed: HashSet<(NodeId, NodeId)>,
}

impl Network {
    /// Creates a fully connected network with the given configuration.
    pub fn new(config: NetworkConfig) -> Self {
        Network {
            config,
            groups: HashMap::new(),
            last_delivery: HashMap::new(),
            severed: HashSet::new(),
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Partitions the network into the given groups. Nodes not mentioned in
    /// any group keep full connectivity with every group (they are treated
    /// as being in all groups — useful for observers).
    pub fn set_partition(&mut self, groups: &[&[NodeId]]) {
        self.groups.clear();
        for (gi, group) in groups.iter().enumerate() {
            for &n in group.iter() {
                self.groups.insert(n, gi as u32);
            }
        }
    }

    /// Removes all partitions, restoring full connectivity.
    pub fn heal_partition(&mut self) {
        self.groups.clear();
    }

    /// Severs the directed link from `src` to `dst`.
    pub fn sever_link(&mut self, src: NodeId, dst: NodeId) {
        self.severed.insert((src, dst));
    }

    /// Restores a previously severed link.
    pub fn restore_link(&mut self, src: NodeId, dst: NodeId) {
        self.severed.remove(&(src, dst));
    }

    /// Returns true if a message from `src` can currently reach `dst`.
    pub fn connected(&self, src: NodeId, dst: NodeId) -> bool {
        if self.severed.contains(&(src, dst)) {
            return false;
        }
        match (self.groups.get(&src), self.groups.get(&dst)) {
            (Some(a), Some(b)) => a == b,
            // Nodes outside every partition group talk to everyone.
            _ => true,
        }
    }

    /// Computes the delivery schedule for a message sent at `now`.
    ///
    /// Loopback messages (src == dst) are delivered after one tick and are
    /// never lost: an actor can always talk to itself.
    pub fn offer<R: Rng>(
        &mut self,
        rng: &mut R,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
    ) -> Delivery {
        if src == dst {
            return Delivery::At(now + SimDuration::from_ticks(1));
        }
        if !self.connected(src, dst) {
            return Delivery::Dropped;
        }
        if self.config.drop_prob > 0.0 && rng.gen::<f64>() < self.config.drop_prob {
            return Delivery::Dropped;
        }
        let jitter = if self.config.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_ticks(rng.gen_range(0..=self.config.jitter.ticks()))
        };
        let mut at = now + self.config.base_latency + jitter;
        if self.config.fifo_links {
            let last = self
                .last_delivery
                .entry((src, dst))
                .or_insert(SimTime::ZERO);
            if at <= *last {
                at = *last + SimDuration::from_ticks(1);
            }
            *last = at;
        }
        Delivery::At(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn latency_within_bounds() {
        let mut net = Network::new(NetworkConfig::lan());
        let mut r = rng();
        for _ in 0..100 {
            match net.offer(&mut r, SimTime::ZERO, NodeId::new(0), NodeId::new(1)) {
                Delivery::At(t) => {
                    assert!(t.ticks() >= 100, "latency below base: {t}");
                }
                Delivery::Dropped => panic!("lossless network dropped a message"),
            }
        }
    }

    #[test]
    fn fifo_links_never_reorder() {
        let mut net = Network::new(NetworkConfig::lan());
        let mut r = rng();
        let mut last = SimTime::ZERO;
        let mut now = SimTime::ZERO;
        for i in 0..200 {
            now = SimTime::from_ticks(i); // sends spaced 1 tick apart
            match net.offer(&mut r, now, NodeId::new(0), NodeId::new(1)) {
                Delivery::At(t) => {
                    assert!(t > last, "FIFO violated: {t} after {last}");
                    last = t;
                }
                Delivery::Dropped => panic!("unexpected drop"),
            }
        }
        let _ = now;
    }

    #[test]
    fn partition_blocks_cross_group_traffic() {
        let mut net = Network::new(NetworkConfig::lan());
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        net.set_partition(&[&[a], &[b]]);
        assert!(!net.connected(a, b));
        assert!(net.connected(a, a));
        // c is in no group: talks to both sides.
        assert!(net.connected(a, c));
        assert!(net.connected(c, b));
        net.heal_partition();
        assert!(net.connected(a, b));
    }

    #[test]
    fn severed_link_is_directional() {
        let mut net = Network::new(NetworkConfig::lan());
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        net.sever_link(a, b);
        assert!(!net.connected(a, b));
        assert!(net.connected(b, a));
        net.restore_link(a, b);
        assert!(net.connected(a, b));
    }

    #[test]
    fn loopback_is_fast_and_reliable() {
        let mut net = Network::new(NetworkConfig::lan().with_drop_prob(1.0));
        let mut r = rng();
        match net.offer(
            &mut r,
            SimTime::from_ticks(5),
            NodeId::new(3),
            NodeId::new(3),
        ) {
            Delivery::At(t) => assert_eq!(t.ticks(), 6),
            Delivery::Dropped => panic!("loopback dropped"),
        }
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut net = Network::new(NetworkConfig::lan().with_drop_prob(1.0));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(
                net.offer(&mut r, SimTime::ZERO, NodeId::new(0), NodeId::new(1)),
                Delivery::Dropped
            );
        }
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn invalid_drop_prob_rejected() {
        let _ = NetworkConfig::lan().with_drop_prob(1.5);
    }
}
