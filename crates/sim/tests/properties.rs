//! Property-based tests for the simulation kernel: determinism, FIFO
//! delivery, latency bounds, and statistics invariants.

use proptest::prelude::*;

use repl_sim::*;

#[derive(Clone, Debug)]
struct Burst(Vec<u32>);
impl Message for Burst {
    fn wire_size(&self) -> usize {
        4 * self.0.len()
    }
}

/// Sends scripted single-value bursts to a sink at scripted times.
struct Sender {
    to: NodeId,
    script: Vec<(u64, u32)>, // (delay ticks, value)
}
impl Actor<Burst> for Sender {
    fn on_start(&mut self, ctx: &mut Context<'_, Burst>) {
        for (i, &(at, _)) in self.script.iter().enumerate() {
            ctx.set_timer(SimDuration::from_ticks(at), i as u64);
        }
    }
    fn on_message(&mut self, _: &mut Context<'_, Burst>, _: NodeId, _: Burst) {}
    fn on_timer(&mut self, ctx: &mut Context<'_, Burst>, _: TimerId, tag: u64) {
        let (_, value) = self.script[tag as usize];
        ctx.send(self.to, Burst(vec![value]));
    }
    impl_as_any!();
}

struct Sink {
    got: Vec<(NodeId, u32)>,
}
impl Actor<Burst> for Sink {
    fn on_message(&mut self, _: &mut Context<'_, Burst>, from: NodeId, msg: Burst) {
        for v in msg.0 {
            self.got.push((from, v));
        }
    }
    impl_as_any!();
}

fn run_world(
    seed: u64,
    scripts: &[Vec<(u64, u32)>],
    net: NetworkConfig,
) -> (Vec<(NodeId, u32)>, Metrics) {
    let mut world: World<Burst> = World::new(SimConfig::new(seed).with_network(net));
    let sink = world.add_actor(Box::new(Sink { got: Vec::new() }));
    for script in scripts {
        world.add_actor(Box::new(Sender {
            to: sink,
            script: script.clone(),
        }));
    }
    world.start();
    world.run_to_quiescence(SimTime::from_ticks(10_000_000));
    let got = world.actor_ref::<Sink>(sink).got.clone();
    (got, world.metrics())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same seed and script ⇒ identical observable outcome.
    #[test]
    fn determinism(
        seed in any::<u64>(),
        script in proptest::collection::vec((0u64..5_000, any::<u32>()), 1..20),
    ) {
        let net = NetworkConfig::lan();
        let (a, ma) = run_world(seed, std::slice::from_ref(&script), net.clone());
        let (b, mb) = run_world(seed, &[script], net);
        prop_assert_eq!(a, b);
        prop_assert_eq!(ma, mb);
    }

    /// FIFO links: per-sender delivery order equals send order, for any
    /// interleaving of senders and any jitter.
    #[test]
    fn fifo_per_sender(
        seed in any::<u64>(),
        scripts in proptest::collection::vec(
            proptest::collection::vec((0u64..3_000, any::<u32>()), 1..15),
            1..4,
        ),
        jitter in 0u64..500,
    ) {
        let net = NetworkConfig::lan().with_jitter(SimDuration::from_ticks(jitter));
        // Tag each sender's values with its index so order is recoverable.
        let scripts: Vec<Vec<(u64, u32)>> = scripts
            .iter()
            .enumerate()
            .map(|(s, sc)| {
                sc.iter()
                    .enumerate()
                    .map(|(i, &(at, _))| (at, (s as u32) << 16 | i as u32))
                    .collect()
            })
            .collect();
        // Sort each script by time: send order per sender = time order.
        let mut sorted = scripts.clone();
        for s in &mut sorted {
            s.sort();
        }
        let (got, metrics) = run_world(seed, &sorted, net);
        prop_assert_eq!(metrics.messages_dropped, 0);
        for sender in 0..sorted.len() as u32 {
            let seqs: Vec<u32> = got
                .iter()
                .filter(|(_, v)| v >> 16 == sender)
                .map(|(_, v)| v & 0xFFFF)
                .collect();
            let sent: Vec<u32> = sorted[sender as usize]
                .iter()
                .map(|&(_, v)| v & 0xFFFF)
                .collect();
            prop_assert_eq!(seqs, sent, "sender {} reordered", sender);
        }
    }

    /// Every delivery is within [base, base+jitter] of its send (plus the
    /// FIFO push-back, which only ever delays).
    #[test]
    fn latency_bounds(
        seed in any::<u64>(),
        base in 1u64..2_000,
        jitter in 0u64..500,
    ) {
        let net = NetworkConfig {
            base_latency: SimDuration::from_ticks(base),
            jitter: SimDuration::from_ticks(jitter),
            drop_prob: 0.0,
            fifo_links: false,
        };
        let mut network = Network::new(net);
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let rng: &mut rand::rngs::SmallRng = &mut rng;
        for i in 0..100u64 {
            let now = SimTime::from_ticks(i * 10);
            match network.offer(rng, now, NodeId::new(0), NodeId::new(1)) {
                Delivery::At(t) => {
                    let lat = (t - now).ticks();
                    prop_assert!(lat >= base && lat <= base + jitter, "latency {} out of bounds", lat);
                }
                Delivery::Dropped => prop_assert!(false, "lossless network dropped"),
            }
        }
    }

    /// Percentiles are monotone in q and bounded by min/max.
    #[test]
    fn latency_stats_invariants(samples in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut stats = LatencyStats::new();
        for &s in &samples {
            stats.record(SimDuration::from_ticks(s));
        }
        let mut last = SimDuration::ZERO;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let p = stats.percentile(q);
            prop_assert!(p >= last, "percentile not monotone at q={}", q);
            last = p;
        }
        prop_assert!(stats.min() <= stats.mean());
        prop_assert!(stats.mean() <= stats.max());
        prop_assert_eq!(stats.percentile(1.0), stats.max());
    }

    /// The timing wheel pops in exactly the order the old binary-heap
    /// event queue would have: ascending (time, seq), with same-tick
    /// entries resolved by insertion sequence. Times mix dense same-tick
    /// ties, near-future slots, and far-overflow horizons so every level
    /// of the hierarchy (and the overflow heap) is exercised.
    #[test]
    fn timing_wheel_matches_binary_heap_order(
        times in proptest::collection::vec(
            prop_oneof![
                0u64..8,            // same-tick ties and level-0 slots
                0u64..5_000,        // level 1-2 territory
                0u64..20_000_000,   // level 3 and beyond the 16.8M window
            ],
            1..120,
        ),
    ) {
        use std::cmp::Reverse;
        let mut wheel = TimingWheel::new();
        let mut heap = std::collections::BinaryHeap::new();
        for (seq, &t) in times.iter().enumerate() {
            wheel.push(t, seq as u64, seq);
            heap.push(Reverse((t, seq as u64, seq)));
        }
        let mut last = 0u64;
        while let Some(Reverse((t, seq, item))) = heap.pop() {
            prop_assert_eq!(wheel.peek_time(), Some(t));
            let e = wheel.pop().expect("wheel has as many entries as the heap");
            prop_assert_eq!((e.time, e.seq, e.item), (t, seq, item));
            prop_assert!(e.time >= last, "pop order went backwards");
            last = e.time;
        }
        prop_assert!(wheel.is_empty());
        prop_assert_eq!(wheel.pop().map(|e| e.item), None);
    }

    /// Interleaved push/pop: after any prefix of pops, pushing more
    /// entries (at or after the current head, as the simulator does)
    /// still yields globally sorted (time, seq) order.
    #[test]
    fn timing_wheel_interleaved_push_pop(
        first in proptest::collection::vec(0u64..10_000, 1..40),
        second in proptest::collection::vec(0u64..200_000, 1..40),
        pops in 1usize..20,
    ) {
        use std::cmp::Reverse;
        let mut wheel = TimingWheel::new();
        let mut heap = std::collections::BinaryHeap::new();
        let mut seq = 0u64;
        for &t in &first {
            wheel.push(t, seq, seq);
            heap.push(Reverse((t, seq)));
            seq += 1;
        }
        let mut now = 0u64;
        for _ in 0..pops.min(first.len()) {
            let Reverse((t, s)) = heap.pop().expect("prefix pop");
            let e = wheel.pop().expect("prefix pop");
            prop_assert_eq!((e.time, e.seq), (t, s));
            now = t;
        }
        // New work is always scheduled at or after the current time.
        for &dt in &second {
            let t = now + dt;
            wheel.push(t, seq, seq);
            heap.push(Reverse((t, seq)));
            seq += 1;
        }
        while let Some(Reverse((t, s))) = heap.pop() {
            let e = wheel.pop().expect("wheel drains with the heap");
            prop_assert_eq!((e.time, e.seq), (t, s));
        }
        prop_assert!(wheel.is_empty());
    }

    /// Streaming histogram vs exact store-all stats: the count, sum-mean
    /// and extrema agree exactly, and every percentile is within the
    /// histogram's documented relative-error bound of the exact value.
    #[test]
    fn histogram_tracks_exact_percentiles(
        samples in proptest::collection::vec(0u64..50_000_000, 1..300),
    ) {
        let mut exact = LatencyStats::new();
        let mut hist = LatencyHistogram::new();
        for &s in &samples {
            exact.record(SimDuration::from_ticks(s));
            hist.record(SimDuration::from_ticks(s));
        }
        prop_assert_eq!(hist.count(), samples.len() as u64);
        prop_assert_eq!(hist.min(), exact.min());
        prop_assert_eq!(hist.max(), exact.max());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let e = exact.percentile(q).ticks() as f64;
            let h = hist.percentile(q).ticks() as f64;
            let bound = e * LatencyHistogram::MAX_RELATIVE_ERROR + 1.0;
            prop_assert!(
                (h - e).abs() <= bound,
                "q={} exact={} hist={} bound={}", q, e, h, bound
            );
        }
    }

    /// Merging split histograms equals recording the whole stream into
    /// one — the property the per-group collection path relies on.
    #[test]
    fn histogram_merge_is_lossless(
        left in proptest::collection::vec(0u64..1_000_000, 0..150),
        right in proptest::collection::vec(0u64..1_000_000, 0..150),
    ) {
        let mut merged = LatencyHistogram::new();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for &s in &left {
            merged.record(SimDuration::from_ticks(s));
            a.record(SimDuration::from_ticks(s));
        }
        for &s in &right {
            merged.record(SimDuration::from_ticks(s));
            b.record(SimDuration::from_ticks(s));
        }
        a.merge(&b);
        prop_assert_eq!(a.fingerprint(), merged.fingerprint());
    }

    /// Dropped messages are exactly the complement of delivered ones.
    #[test]
    fn message_conservation(
        seed in any::<u64>(),
        drop in 0.0f64..1.0,
        script in proptest::collection::vec((0u64..2_000, any::<u32>()), 1..30),
    ) {
        let net = NetworkConfig::lan().with_drop_prob(drop);
        let (_, m) = run_world(seed, &[script], net);
        prop_assert_eq!(m.messages_sent, m.messages_delivered + m.messages_dropped);
    }
}
