//! Zipfian sampling for hotspot workloads.
//!
//! Database-replication conflict behaviour (abort rates, lock waits,
//! reconciliations) is driven by access skew, so the performance study
//! sweeps the zipf exponent. Implemented with a precomputed inverse CDF;
//! exponent 0 degenerates to the uniform distribution.

use rand::Rng;

/// A zipfian distribution over `0..n`.
///
/// # Examples
///
/// ```
/// use repl_workload::Zipf;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let z = Zipf::new(100, 0.99);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let k = z.sample(&mut rng);
/// assert!(k < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a distribution over `0..n` with exponent `theta >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or not finite.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf needs a non-empty domain");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "zipf exponent must be finite and >= 0"
        );
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against floating-point shortfall at the top.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf: weights }
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Draws a key in `0..n`; key 0 is the hottest.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i as u64,
            Err(i) => (i as u64).min(self.n() - 1),
        }
    }

    /// Probability mass of key `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        let i = k as usize;
        if i >= self.cdf.len() {
            return 0.0;
        }
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12, "pmf({k}) = {}", z.pmf(k));
        }
    }

    #[test]
    fn skew_concentrates_on_low_keys() {
        let z = Zipf::new(100, 1.2);
        assert!(z.pmf(0) > 10.0 * z.pmf(10));
        assert!(z.pmf(10) > z.pmf(90));
    }

    #[test]
    fn samples_match_pmf_roughly() {
        let z = Zipf::new(10, 0.99);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        let trials = 50_000;
        for _ in 0..trials {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for k in 0..10 {
            let expected = z.pmf(k) * trials as f64;
            let got = counts[k as usize] as f64;
            assert!(
                (got - expected).abs() < expected * 0.15 + 30.0,
                "key {k}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(37, 0.7);
        let total: f64 = (0..37).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(99), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty domain")]
    fn empty_domain_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
