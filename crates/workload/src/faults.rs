//! Declarative fault plans: the nemesis.
//!
//! A [`FaultPlan`] schedules node crashes/recoveries and network faults
//! (partitions and heals, directional link drops, latency spikes) at
//! virtual times, generalising [`CrashSchedule`](crate::CrashSchedule).
//! Plans are plain data: the runner validates them against the server
//! count and deadline ([`FaultPlan::validate`]) and schedules every event
//! into the world before the run starts.
//!
//! [`FaultPlan::random`] is a seeded nemesis generator: the same
//! `(seed, intensity)` pair always produces the same plan, so fault
//! sweeps are reproducible tick-for-tick.

use std::collections::BTreeSet;
use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use repl_sim::{LinkQuality, NetFault, NodeId, SimDuration, SimTime};

use crate::crashes::{CrashEvent, CrashSchedule};

/// One scheduled fault: a node fault or a network fault at a virtual time.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Crash `node` at `at`.
    Crash {
        /// When the crash happens.
        at: SimTime,
        /// The crashed node.
        node: NodeId,
    },
    /// Recover `node` at `at`.
    Recover {
        /// When the recovery happens.
        at: SimTime,
        /// The recovered node.
        node: NodeId,
    },
    /// Apply a network fault at `at`.
    Net {
        /// When the fault is applied.
        at: SimTime,
        /// The fault.
        fault: NetFault,
    },
    /// Destroy `node`'s durable volume at `at`: the node halts and its
    /// local WAL and store are lost. Recovery must restore from the
    /// durable tier (or from peers). Wiping an already-down node is
    /// allowed — a dead node's disk can still die.
    VolumeLoss {
        /// When the disaster happens.
        at: SimTime,
        /// The wiped node.
        node: NodeId,
    },
}

impl FaultEvent {
    /// The event's time.
    pub fn time(&self) -> SimTime {
        match self {
            FaultEvent::Crash { at, .. }
            | FaultEvent::Recover { at, .. }
            | FaultEvent::Net { at, .. }
            | FaultEvent::VolumeLoss { at, .. } => *at,
        }
    }

    /// Short label for summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            FaultEvent::Crash { .. } => "crash",
            FaultEvent::Recover { .. } => "recover",
            FaultEvent::Net { fault, .. } => fault.kind(),
            FaultEvent::VolumeLoss { .. } => "volume-loss",
        }
    }
}

/// Why a fault plan was rejected by [`FaultPlan::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// An event names a node outside `0..nodes`.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The valid node count.
        nodes: u32,
        /// When the event was scheduled.
        at: SimTime,
    },
    /// A node is crashed while already down.
    DuplicateCrash {
        /// The node crashed twice.
        node: NodeId,
        /// Time of the second crash.
        at: SimTime,
    },
    /// A node is recovered while not down (including recover-before-crash).
    RecoverWithoutCrash {
        /// The node recovered while alive.
        node: NodeId,
        /// Time of the bogus recovery.
        at: SimTime,
    },
    /// An event is scheduled after the run deadline and could never apply.
    PastMaxTime {
        /// The event's time.
        at: SimTime,
        /// The run deadline.
        max_time: SimTime,
    },
    /// A heal with no partition in effect.
    HealWithoutPartition {
        /// Time of the bogus heal.
        at: SimTime,
    },
    /// A partition with no groups, or with an empty group.
    EmptyPartition {
        /// Time of the malformed partition.
        at: SimTime,
    },
    /// A partition places one node in two groups.
    OverlappingGroups {
        /// The doubly-assigned node.
        node: NodeId,
        /// Time of the malformed partition.
        at: SimTime,
    },
    /// A link fault from a node to itself (loopback is never faulted).
    SelfLink {
        /// The node.
        node: NodeId,
        /// Time of the malformed link fault.
        at: SimTime,
    },
    /// A degradation with a drop probability outside `[0, 1]`.
    InvalidDropProb {
        /// The offending probability.
        p: f64,
        /// Time of the malformed degradation.
        at: SimTime,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::NodeOutOfRange { node, nodes, at } => {
                write!(f, "{at}: node {node} out of range (have {nodes} servers)")
            }
            FaultPlanError::DuplicateCrash { node, at } => {
                write!(f, "{at}: node {node} crashed while already down")
            }
            FaultPlanError::RecoverWithoutCrash { node, at } => {
                write!(f, "{at}: node {node} recovered while not down")
            }
            FaultPlanError::PastMaxTime { at, max_time } => {
                write!(f, "{at}: event past the run deadline {max_time}")
            }
            FaultPlanError::HealWithoutPartition { at } => {
                write!(f, "{at}: heal with no partition in effect")
            }
            FaultPlanError::EmptyPartition { at } => {
                write!(f, "{at}: partition with no or empty groups")
            }
            FaultPlanError::OverlappingGroups { node, at } => {
                write!(f, "{at}: node {node} appears in two partition groups")
            }
            FaultPlanError::SelfLink { node, at } => {
                write!(f, "{at}: link fault from {node} to itself")
            }
            FaultPlanError::InvalidDropProb { p, at } => {
                write!(f, "{at}: link drop probability {p} outside [0,1]")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A declarative fault load: crashes, recoveries, partitions, heals,
/// link drops and latency spikes, each at a virtual time.
///
/// # Examples
///
/// ```
/// use repl_workload::FaultPlan;
/// use repl_sim::{NodeId, SimDuration, SimTime};
///
/// let plan = FaultPlan::new()
///     .crash_at(SimTime::from_ticks(2_000), NodeId::new(2))
///     .recover_at(SimTime::from_ticks(9_000), NodeId::new(2))
///     .partition_at(
///         SimTime::from_ticks(4_000),
///         vec![vec![NodeId::new(0), NodeId::new(1)], vec![NodeId::new(2)]],
///     )
///     .heal_at(SimTime::from_ticks(8_000))
///     .degrade_link_at(
///         SimTime::from_ticks(5_000),
///         NodeId::new(0),
///         NodeId::new(1),
///         SimDuration::from_ticks(3_000),
///         0.0,
///     )
///     .restore_link_at(SimTime::from_ticks(7_000), NodeId::new(0), NodeId::new(1));
/// assert!(plan.validate(3, SimTime::from_ticks(30_000)).is_ok());
/// assert!(plan.fully_healed());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Creates an empty (failure-free) plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a crash.
    pub fn crash_at(mut self, at: SimTime, node: NodeId) -> Self {
        self.events.push(FaultEvent::Crash { at, node });
        self
    }

    /// Adds a recovery.
    pub fn recover_at(mut self, at: SimTime, node: NodeId) -> Self {
        self.events.push(FaultEvent::Recover { at, node });
        self
    }

    /// Adds a paired outage: `node` crashes at `at` and recovers
    /// `downtime` later. The pairing cannot drift apart the way separate
    /// `crash_at`/`recover_at` calls can, which is what the recovery
    /// studies sweep (outage length → transfer strategy and MTTR).
    pub fn outage_at(self, at: SimTime, node: NodeId, downtime: SimDuration) -> Self {
        self.crash_at(at, node).recover_at(at + downtime, node)
    }

    /// Adds a volume loss: `node` halts at `at` and its durable local
    /// state (WAL, store) is destroyed. Until recovered the node is down
    /// exactly like a crash; on recovery it must restore from the durable
    /// log tier before rejoining.
    pub fn volume_loss_at(mut self, at: SimTime, node: NodeId) -> Self {
        self.events.push(FaultEvent::VolumeLoss { at, node });
        self
    }

    /// Adds a paired disaster: `node` loses its volume at `at` and comes
    /// back `downtime` later, the disaster analogue of
    /// [`FaultPlan::outage_at`]. The P12 study sweeps this against the
    /// durable tier's upload lag (data-loss window vs restore MTTR).
    pub fn disaster_at(self, at: SimTime, node: NodeId, downtime: SimDuration) -> Self {
        self.volume_loss_at(at, node).recover_at(at + downtime, node)
    }

    /// The plan's outages in crash order: each crash paired with its
    /// matching recovery (events walked in time order, ties broken by
    /// insertion order, exactly like [`FaultPlan::validate`]). The
    /// downtime is `None` for a crash that never recovers. This is the
    /// outage-length distribution the recovery experiments bucket by.
    pub fn outages(&self) -> Vec<(NodeId, SimTime, Option<SimDuration>)> {
        let mut order: Vec<(usize, &FaultEvent)> = self.events.iter().enumerate().collect();
        order.sort_by_key(|(i, e)| (e.time(), *i));
        let mut open: Vec<(NodeId, SimTime)> = Vec::new();
        let mut outages: Vec<(NodeId, SimTime, Option<SimDuration>)> = Vec::new();
        for (_, e) in order {
            match e {
                FaultEvent::Crash { at, node } => open.push((*node, *at)),
                FaultEvent::VolumeLoss { at, node } => {
                    // A wipe opens an outage only if the node is not
                    // already down — it extends the existing one.
                    if !open.iter().any(|(n, _)| n == node) {
                        open.push((*node, *at));
                    }
                }
                FaultEvent::Recover { at, node } => {
                    if let Some(pos) = open.iter().position(|(n, _)| n == node) {
                        let (_, crashed) = open.remove(pos);
                        outages.push((*node, crashed, Some(*at - crashed)));
                    }
                }
                FaultEvent::Net { .. } => {}
            }
        }
        outages.extend(open.into_iter().map(|(n, at)| (n, at, None)));
        outages.sort_by_key(|&(n, at, _)| (at, n));
        outages
    }

    /// Adds a partition into the given groups (nodes in no group keep
    /// full connectivity).
    pub fn partition_at(mut self, at: SimTime, groups: Vec<Vec<NodeId>>) -> Self {
        self.events.push(FaultEvent::Net {
            at,
            fault: NetFault::Partition(groups),
        });
        self
    }

    /// Adds a heal of all partitions.
    pub fn heal_at(mut self, at: SimTime) -> Self {
        self.events.push(FaultEvent::Net {
            at,
            fault: NetFault::Heal,
        });
        self
    }

    /// Severs the directed link `src → dst` at `at`.
    pub fn link_down_at(mut self, at: SimTime, src: NodeId, dst: NodeId) -> Self {
        self.events.push(FaultEvent::Net {
            at,
            fault: NetFault::LinkDown { src, dst },
        });
        self
    }

    /// Restores the directed link `src → dst` at `at`.
    pub fn link_up_at(mut self, at: SimTime, src: NodeId, dst: NodeId) -> Self {
        self.events.push(FaultEvent::Net {
            at,
            fault: NetFault::LinkUp { src, dst },
        });
        self
    }

    /// Degrades the directed link `src → dst` at `at`: messages pay
    /// `extra_latency` and face `drop_prob` extra loss until restored.
    pub fn degrade_link_at(
        mut self,
        at: SimTime,
        src: NodeId,
        dst: NodeId,
        extra_latency: SimDuration,
        drop_prob: f64,
    ) -> Self {
        self.events.push(FaultEvent::Net {
            at,
            fault: NetFault::Degrade {
                src,
                dst,
                quality: LinkQuality {
                    extra_latency,
                    drop_prob,
                },
            },
        });
        self
    }

    /// Removes any degradation from the directed link `src → dst` at `at`.
    pub fn restore_link_at(mut self, at: SimTime, src: NodeId, dst: NodeId) -> Self {
        self.events.push(FaultEvent::Net {
            at,
            fault: NetFault::Restore { src, dst },
        });
        self
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True if the plan is failure-free.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events (faults and repairs).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Number of disruptive events (crashes, volume losses, partitions,
    /// link faults).
    pub fn fault_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| match e {
                FaultEvent::Crash { .. } | FaultEvent::VolumeLoss { .. } => true,
                FaultEvent::Recover { .. } => false,
                FaultEvent::Net { fault, .. } => fault.is_disruptive(),
            })
            .count()
    }

    /// True if the plan ever crashes `node`.
    pub fn crashes(&self, node: NodeId) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::Crash { node: n, .. } if *n == node))
    }

    /// True if the plan ever destroys `node`'s volume.
    pub fn wipes(&self, node: NodeId) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::VolumeLoss { node: n, .. } if *n == node))
    }

    /// The time of the earliest node-down fault — crash or volume loss —
    /// if any (the anchor for failover latency).
    pub fn first_crash_time(&self) -> Option<SimTime> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Crash { at, .. } | FaultEvent::VolumeLoss { at, .. } => Some(*at),
                _ => None,
            })
            .min()
    }

    /// Nodes whose state a fault may have touched: crashed nodes, members
    /// of minority partition groups (every group but the largest; first
    /// listed wins a tie), and both endpoints of severed or degraded
    /// links — the destination misses traffic, and the source's delayed
    /// or dropped heartbeats can get it falsely suspected by the group.
    /// Replicas outside this set saw every message a fault-free run would
    /// have delivered to the same side of each cut, so convergence
    /// assertions restrict themselves to the complement.
    pub fn disturbed_nodes(&self) -> BTreeSet<NodeId> {
        let mut disturbed = BTreeSet::new();
        for e in &self.events {
            match e {
                FaultEvent::Crash { node, .. } | FaultEvent::VolumeLoss { node, .. } => {
                    disturbed.insert(*node);
                }
                FaultEvent::Recover { .. } => {}
                FaultEvent::Net { fault, .. } => match fault {
                    NetFault::Partition(groups) => {
                        let largest = groups
                            .iter()
                            .enumerate()
                            .max_by(|(ai, a), (bi, b)| a.len().cmp(&b.len()).then(bi.cmp(ai)))
                            .map(|(i, _)| i);
                        for (gi, group) in groups.iter().enumerate() {
                            if Some(gi) != largest {
                                disturbed.extend(group.iter().copied());
                            }
                        }
                    }
                    NetFault::LinkDown { src, dst } | NetFault::Degrade { src, dst, .. } => {
                        disturbed.insert(*src);
                        disturbed.insert(*dst);
                    }
                    NetFault::Heal | NetFault::LinkUp { .. } | NetFault::Restore { .. } => {}
                },
            }
        }
        disturbed
    }

    /// True if every fault in the plan is eventually repaired: every
    /// crashed node recovers, every partition heals, every severed or
    /// degraded link is restored.
    pub fn fully_healed(&self) -> bool {
        let mut events: Vec<&FaultEvent> = self.events.iter().collect();
        events.sort_by_key(|e| e.time());
        let mut crashed: BTreeSet<NodeId> = BTreeSet::new();
        let mut partitioned = false;
        let mut severed: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        let mut degraded: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        for e in events {
            match e {
                FaultEvent::Crash { node, .. } | FaultEvent::VolumeLoss { node, .. } => {
                    crashed.insert(*node);
                }
                FaultEvent::Recover { node, .. } => {
                    crashed.remove(node);
                }
                FaultEvent::Net { fault, .. } => match fault {
                    NetFault::Partition(_) => partitioned = true,
                    NetFault::Heal => partitioned = false,
                    NetFault::LinkDown { src, dst } => {
                        severed.insert((*src, *dst));
                    }
                    NetFault::LinkUp { src, dst } => {
                        severed.remove(&(*src, *dst));
                    }
                    NetFault::Degrade { src, dst, .. } => {
                        degraded.insert((*src, *dst));
                    }
                    NetFault::Restore { src, dst } => {
                        degraded.remove(&(*src, *dst));
                    }
                },
            }
        }
        crashed.is_empty() && !partitioned && severed.is_empty() && degraded.is_empty()
    }

    /// Validates the plan against a server count and run deadline.
    ///
    /// Events are checked in time order (ties broken by insertion order,
    /// matching the world's scheduler). Repairs of healthy links
    /// (`link_up`/`restore` with no matching fault) are allowed — they are
    /// harmless no-ops, like their [`repl_sim::Network`] counterparts.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultPlanError`] encountered.
    pub fn validate(&self, nodes: u32, max_time: SimTime) -> Result<(), FaultPlanError> {
        let mut events: Vec<&FaultEvent> = self.events.iter().collect();
        events.sort_by_key(|e| e.time());
        let in_range = |n: NodeId| n.index() < nodes as usize;
        let mut crashed: BTreeSet<NodeId> = BTreeSet::new();
        let mut partitioned = false;
        for e in events {
            let at = e.time();
            if at > max_time {
                return Err(FaultPlanError::PastMaxTime { at, max_time });
            }
            match e {
                FaultEvent::Crash { node, .. } => {
                    if !in_range(*node) {
                        return Err(FaultPlanError::NodeOutOfRange {
                            node: *node,
                            nodes,
                            at,
                        });
                    }
                    if !crashed.insert(*node) {
                        return Err(FaultPlanError::DuplicateCrash { node: *node, at });
                    }
                }
                FaultEvent::VolumeLoss { node, .. } => {
                    if !in_range(*node) {
                        return Err(FaultPlanError::NodeOutOfRange {
                            node: *node,
                            nodes,
                            at,
                        });
                    }
                    // Unlike a crash, wiping an already-down node is
                    // legal: the disk of a crashed node can still die,
                    // and the single matching recovery brings it back.
                    crashed.insert(*node);
                }
                FaultEvent::Recover { node, .. } => {
                    if !in_range(*node) {
                        return Err(FaultPlanError::NodeOutOfRange {
                            node: *node,
                            nodes,
                            at,
                        });
                    }
                    if !crashed.remove(node) {
                        return Err(FaultPlanError::RecoverWithoutCrash { node: *node, at });
                    }
                }
                FaultEvent::Net { fault, .. } => match fault {
                    NetFault::Partition(groups) => {
                        if groups.is_empty() || groups.iter().any(|g| g.is_empty()) {
                            return Err(FaultPlanError::EmptyPartition { at });
                        }
                        let mut seen = BTreeSet::new();
                        for &n in groups.iter().flatten() {
                            if !in_range(n) {
                                return Err(FaultPlanError::NodeOutOfRange { node: n, nodes, at });
                            }
                            if !seen.insert(n) {
                                return Err(FaultPlanError::OverlappingGroups { node: n, at });
                            }
                        }
                        partitioned = true;
                    }
                    NetFault::Heal => {
                        if !partitioned {
                            return Err(FaultPlanError::HealWithoutPartition { at });
                        }
                        partitioned = false;
                    }
                    NetFault::LinkDown { src, dst }
                    | NetFault::LinkUp { src, dst }
                    | NetFault::Restore { src, dst } => {
                        for &n in [src, dst] {
                            if !in_range(n) {
                                return Err(FaultPlanError::NodeOutOfRange { node: n, nodes, at });
                            }
                        }
                        if src == dst {
                            return Err(FaultPlanError::SelfLink { node: *src, at });
                        }
                    }
                    NetFault::Degrade { src, dst, quality } => {
                        for &n in [src, dst] {
                            if !in_range(n) {
                                return Err(FaultPlanError::NodeOutOfRange { node: n, nodes, at });
                            }
                        }
                        if src == dst {
                            return Err(FaultPlanError::SelfLink { node: *src, at });
                        }
                        if !(0.0..=1.0).contains(&quality.drop_prob) {
                            return Err(FaultPlanError::InvalidDropProb {
                                p: quality.drop_prob,
                                at,
                            });
                        }
                    }
                },
            }
        }
        Ok(())
    }

    /// The seeded nemesis: a reproducible random fault plan.
    ///
    /// The same `(seed, intensity, nodes, horizon)` always yields the
    /// same plan. `intensity` in `[0, 1]` scales how many fault episodes
    /// are injected and how harsh each is; `nodes` is the server count the
    /// plan targets and `horizon` the approximate length of the workload
    /// (faults land in `[horizon/10, horizon/2]` so they overlap the run).
    ///
    /// Generated plans are valid by construction and deliberately
    /// survivable, in the spirit of the paper's failure assumptions
    /// (crash faults, primary-partition membership):
    ///
    /// * every fault heals: crashes recover, partitions heal, degraded
    ///   links are restored ([`FaultPlan::fully_healed`] is true),
    /// * victims are drawn from the high-ranked tail of the group, so
    ///   rank 0 — the primary/sequencer of the primary-copy techniques —
    ///   and with it a majority of replicas stay untouched,
    /// * each episode composes up to three fault kinds: a crash, a
    ///   partition (splitting off tail nodes), and — when the pool holds
    ///   at least two nodes — a link latency spike/loss burst between two
    ///   pool nodes. Keeping both endpoints in the pool matters: a spiked
    ///   link delays heartbeats, and a falsely suspected *untouched*
    ///   replica could otherwise be evicted from the group,
    /// * at the harshest intensities (above `0.8`) each episode also
    ///   loses a volume: one pool node's disk is destroyed in the second
    ///   half of the episode — after the episode's crash has recovered
    ///   and its partition healed — and recovers before the episode ends.
    ///   One wipe at a time, drawn from the minority pool, so a majority
    ///   is never wiped simultaneously. Disaster draws come from a forked
    ///   RNG stream, so plans at or below intensity `0.8` are
    ///   byte-for-byte what earlier versions generated.
    ///
    /// Plans for fewer than two nodes, a zero intensity or a tiny horizon
    /// are empty. Targeted chaos beyond these guardrails can always be
    /// built explicitly with the `*_at` builders.
    pub fn random(seed: u64, intensity: f64, nodes: u32, horizon: SimTime) -> Self {
        let intensity = intensity.clamp(0.0, 1.0);
        let mut plan = FaultPlan::new();
        if nodes < 2 || intensity == 0.0 || horizon.ticks() < 1_000 {
            return plan;
        }
        let mut rng = SmallRng::seed_from_u64(seed ^ intensity.to_bits().rotate_left(17));
        // The victim pool: the tail ⌊(nodes-1)/2⌋ node ids (at least one).
        // Crashes, partition minorities and faulted-link endpoints all
        // come from here, which keeps rank 0 and a majority untouched.
        let pool_size = ((nodes - 1) / 2).max(1);
        let pool_start = nodes - pool_size;
        // Fault window: [10%, 50%] of the horizon, split into episodes.
        let start = horizon.ticks() / 10;
        let end = horizon.ticks() / 2;
        let episodes = 1 + (intensity * 2.0).floor() as u64;
        let span = (end - start) / episodes;
        if span < 8 {
            return plan;
        }
        for ep in 0..episodes {
            let t0 = start + ep * span;
            // Each fault lives inside the first half of the episode and is
            // repaired by episode end.
            let onset = |rng: &mut SmallRng| t0 + rng.gen_range(0..span / 4);
            let repair = |rng: &mut SmallRng, after: u64| {
                (after + 1 + rng.gen_range(0..span / 4)).min(t0 + span - 1)
            };

            // A crash (always).
            let victim = NodeId::new(pool_start + rng.gen_range(0..pool_size));
            let crash = onset(&mut rng);
            plan = plan
                .crash_at(SimTime::from_ticks(crash), victim)
                .recover_at(SimTime::from_ticks(repair(&mut rng, crash)), victim);

            // A partition splitting off `k` tail nodes (needs a node left
            // in the majority besides rank 0 to make the split non-trivial).
            if nodes >= 3 {
                let k = rng.gen_range(1..=pool_size);
                let minority: Vec<NodeId> = (nodes - k..nodes).map(NodeId::new).collect();
                let majority: Vec<NodeId> = (0..nodes - k).map(NodeId::new).collect();
                let cut = onset(&mut rng);
                plan = plan
                    .partition_at(SimTime::from_ticks(cut), vec![majority, minority])
                    .heal_at(SimTime::from_ticks(repair(&mut rng, cut)));
            }

            // A link latency spike (and, at high intensity, extra loss)
            // between two pool nodes.
            if pool_size >= 2 {
                let dst = NodeId::new(pool_start + rng.gen_range(0..pool_size));
                let src = loop {
                    let s = NodeId::new(pool_start + rng.gen_range(0..pool_size));
                    if s != dst {
                        break s;
                    }
                };
                let spike = SimDuration::from_ticks(
                    rng.gen_range(500..=2_000 + (8_000.0 * intensity) as u64),
                );
                let loss = if intensity > 0.5 {
                    rng.gen_range(0.0..0.3) * intensity
                } else {
                    0.0
                };
                let hit = onset(&mut rng);
                plan = plan
                    .degrade_link_at(SimTime::from_ticks(hit), src, dst, spike, loss)
                    .restore_link_at(SimTime::from_ticks(repair(&mut rng, hit)), src, dst);
            }
        }

        // Disasters ride a forked RNG stream (not `rng`): adding them
        // must not shift the crash/partition/spike draws above, so plans
        // at or below intensity 0.8 stay byte-identical to what earlier
        // versions generated. Each wipe lands in the second half of its
        // episode, after the episode's crash repair (≤ t0 + span/2 - 1)
        // and partition heal, and recovers before the episode ends — at
        // most one node is ever down with it, so a majority always
        // survives with volumes intact.
        if intensity > 0.8 {
            let mut drng = SmallRng::seed_from_u64(seed.rotate_left(32) ^ 0xB077_0E55);
            for ep in 0..episodes {
                let t0 = start + ep * span;
                let victim = NodeId::new(pool_start + drng.gen_range(0..pool_size));
                let wipe = t0 + span / 2 + drng.gen_range(0..span / 8);
                let back = (wipe + 1 + drng.gen_range(0..span / 4)).min(t0 + span - 1);
                plan = plan
                    .volume_loss_at(SimTime::from_ticks(wipe), victim)
                    .recover_at(SimTime::from_ticks(back), victim);
            }
        }
        plan
    }
}

impl From<CrashSchedule> for FaultPlan {
    fn from(sched: CrashSchedule) -> Self {
        let mut plan = FaultPlan::new();
        for ev in sched.events() {
            plan = match *ev {
                CrashEvent::Crash(at, node) => plan.crash_at(at, node),
                CrashEvent::Recover(at, node) => plan.recover_at(at, node),
            };
        }
        plan
    }
}

impl From<&CrashSchedule> for FaultPlan {
    fn from(sched: &CrashSchedule) -> Self {
        FaultPlan::from(sched.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    fn n(id: u32) -> NodeId {
        NodeId::new(id)
    }

    #[test]
    fn builders_accumulate_events() {
        let plan = FaultPlan::new()
            .crash_at(t(10), n(1))
            .recover_at(t(20), n(1))
            .partition_at(t(5), vec![vec![n(0)], vec![n(1)]])
            .heal_at(t(15))
            .link_down_at(t(6), n(0), n(1))
            .link_up_at(t(7), n(0), n(1))
            .degrade_link_at(t(8), n(1), n(0), SimDuration::from_ticks(100), 0.1)
            .restore_link_at(t(9), n(1), n(0));
        assert_eq!(plan.len(), 8);
        assert_eq!(plan.fault_count(), 4);
        assert!(plan.crashes(n(1)));
        assert!(!plan.crashes(n(0)));
        assert!(!plan.is_empty());
        assert_eq!(plan.first_crash_time(), Some(t(10)));
        assert!(plan.fully_healed());
        assert!(plan.validate(2, t(100)).is_ok());
    }

    #[test]
    fn validation_rejects_recover_before_crash() {
        let plan = FaultPlan::new()
            .recover_at(t(5), n(0))
            .crash_at(t(10), n(0));
        assert_eq!(
            plan.validate(3, t(100)),
            Err(FaultPlanError::RecoverWithoutCrash {
                node: n(0),
                at: t(5)
            })
        );
    }

    #[test]
    fn validation_rejects_duplicate_crash() {
        let plan = FaultPlan::new().crash_at(t(5), n(1)).crash_at(t(10), n(1));
        assert_eq!(
            plan.validate(3, t(100)),
            Err(FaultPlanError::DuplicateCrash {
                node: n(1),
                at: t(10)
            })
        );
        // Crash–recover–crash is fine.
        let ok = FaultPlan::new()
            .crash_at(t(5), n(1))
            .recover_at(t(7), n(1))
            .crash_at(t(10), n(1));
        assert!(ok.validate(3, t(100)).is_ok());
    }

    #[test]
    fn validation_rejects_events_past_max_time() {
        let plan = FaultPlan::new().crash_at(t(500), n(0));
        assert_eq!(
            plan.validate(3, t(100)),
            Err(FaultPlanError::PastMaxTime {
                at: t(500),
                max_time: t(100)
            })
        );
    }

    #[test]
    fn validation_rejects_out_of_range_nodes() {
        let plan = FaultPlan::new().crash_at(t(5), n(7));
        assert!(matches!(
            plan.validate(3, t(100)),
            Err(FaultPlanError::NodeOutOfRange { .. })
        ));
        let plan = FaultPlan::new().partition_at(t(5), vec![vec![n(0)], vec![n(9)]]);
        assert!(matches!(
            plan.validate(3, t(100)),
            Err(FaultPlanError::NodeOutOfRange { .. })
        ));
        let plan = FaultPlan::new().link_down_at(t(5), n(0), n(9));
        assert!(matches!(
            plan.validate(3, t(100)),
            Err(FaultPlanError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn validation_rejects_malformed_partitions_and_links() {
        let plan = FaultPlan::new().partition_at(t(5), vec![]);
        assert_eq!(
            plan.validate(3, t(100)),
            Err(FaultPlanError::EmptyPartition { at: t(5) })
        );
        let plan = FaultPlan::new().partition_at(t(5), vec![vec![n(0)], vec![]]);
        assert_eq!(
            plan.validate(3, t(100)),
            Err(FaultPlanError::EmptyPartition { at: t(5) })
        );
        let plan = FaultPlan::new().partition_at(t(5), vec![vec![n(0)], vec![n(0)]]);
        assert_eq!(
            plan.validate(3, t(100)),
            Err(FaultPlanError::OverlappingGroups {
                node: n(0),
                at: t(5)
            })
        );
        let plan = FaultPlan::new().heal_at(t(5));
        assert_eq!(
            plan.validate(3, t(100)),
            Err(FaultPlanError::HealWithoutPartition { at: t(5) })
        );
        let plan = FaultPlan::new().link_down_at(t(5), n(1), n(1));
        assert_eq!(
            plan.validate(3, t(100)),
            Err(FaultPlanError::SelfLink {
                node: n(1),
                at: t(5)
            })
        );
        let plan = FaultPlan::new().degrade_link_at(t(5), n(0), n(1), SimDuration::ZERO, 1.5);
        assert!(matches!(
            plan.validate(3, t(100)),
            Err(FaultPlanError::InvalidDropProb { .. })
        ));
    }

    #[test]
    fn validation_checks_in_time_order_not_insertion_order() {
        // Recover inserted first but scheduled after the crash: valid.
        let plan = FaultPlan::new()
            .recover_at(t(20), n(1))
            .crash_at(t(10), n(1));
        assert!(plan.validate(3, t(100)).is_ok());
    }

    #[test]
    fn outage_at_pairs_crash_and_recovery() {
        let plan = FaultPlan::new()
            .outage_at(t(1_000), n(2), SimDuration::from_ticks(5_000))
            .outage_at(t(10_000), n(1), SimDuration::from_ticks(500));
        assert_eq!(plan.len(), 4);
        assert!(plan.validate(3, t(20_000)).is_ok());
        assert!(plan.fully_healed());
        assert_eq!(
            plan.outages(),
            vec![
                (n(2), t(1_000), Some(SimDuration::from_ticks(5_000))),
                (n(1), t(10_000), Some(SimDuration::from_ticks(500))),
            ]
        );
    }

    #[test]
    fn outages_pair_in_time_order_and_flag_unrecovered_crashes() {
        // Two outages of the same node out of insertion order, plus a
        // crash that never recovers: pairing follows event time.
        let plan = FaultPlan::new()
            .recover_at(t(8_000), n(1))
            .crash_at(t(6_000), n(1))
            .crash_at(t(1_000), n(1))
            .recover_at(t(2_000), n(1))
            .crash_at(t(9_000), n(2));
        assert_eq!(
            plan.outages(),
            vec![
                (n(1), t(1_000), Some(SimDuration::from_ticks(1_000))),
                (n(1), t(6_000), Some(SimDuration::from_ticks(2_000))),
                (n(2), t(9_000), None),
            ]
        );
    }

    #[test]
    fn disaster_at_pairs_wipe_and_recovery() {
        let plan = FaultPlan::new()
            .disaster_at(t(2_000), n(2), SimDuration::from_ticks(6_000))
            .outage_at(t(12_000), n(1), SimDuration::from_ticks(500));
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.fault_count(), 2);
        assert!(plan.wipes(n(2)));
        assert!(!plan.wipes(n(1)));
        assert!(!plan.crashes(n(2)));
        assert_eq!(plan.first_crash_time(), Some(t(2_000)));
        assert!(plan.validate(3, t(20_000)).is_ok());
        assert!(plan.fully_healed());
        assert_eq!(
            plan.outages(),
            vec![
                (n(2), t(2_000), Some(SimDuration::from_ticks(6_000))),
                (n(1), t(12_000), Some(SimDuration::from_ticks(500))),
            ]
        );
        assert_eq!(plan.disturbed_nodes(), BTreeSet::from([n(1), n(2)]));
    }

    #[test]
    fn validation_allows_wiping_a_down_node() {
        // Crash, then the dead node's disk dies too, then one recovery
        // brings it back: a single down interval, valid.
        let plan = FaultPlan::new()
            .crash_at(t(1_000), n(2))
            .volume_loss_at(t(2_000), n(2))
            .recover_at(t(5_000), n(2));
        assert!(plan.validate(3, t(10_000)).is_ok());
        assert!(plan.fully_healed());
        // The wipe extends the crash outage rather than opening a second.
        assert_eq!(
            plan.outages(),
            vec![(n(2), t(1_000), Some(SimDuration::from_ticks(4_000)))]
        );
        // But a second recovery has nothing to repair.
        let twice = plan.clone().recover_at(t(6_000), n(2));
        assert_eq!(
            twice.validate(3, t(10_000)),
            Err(FaultPlanError::RecoverWithoutCrash {
                node: n(2),
                at: t(6_000)
            })
        );
        // And out-of-range wipes are rejected like any node fault.
        let oob = FaultPlan::new().volume_loss_at(t(5), n(7));
        assert!(matches!(
            oob.validate(3, t(100)),
            Err(FaultPlanError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn fully_healed_detects_unrecovered_wipe() {
        let wiped = FaultPlan::new().volume_loss_at(t(10), n(1));
        assert!(!wiped.fully_healed());
        assert!(wiped
            .clone()
            .recover_at(t(20), n(1))
            .fully_healed());
    }

    #[test]
    fn random_disasters_appear_only_above_high_intensity() {
        for seed in 0..20 {
            for nodes in 3..=7u32 {
                let calm = FaultPlan::random(seed, 0.8, nodes, t(80_000));
                assert!(
                    calm.events().iter().all(|e| e.kind() != "volume-loss"),
                    "seed {seed} n={nodes}: disaster at intensity 0.8"
                );
                let harsh = FaultPlan::random(seed, 1.0, nodes, t(80_000));
                assert!(
                    harsh.events().iter().any(|e| e.kind() == "volume-loss"),
                    "seed {seed} n={nodes}: no disaster at intensity 1.0"
                );
                harsh
                    .validate(nodes, t(80_000))
                    .unwrap_or_else(|e| panic!("seed {seed} n={nodes}: {e}"));
                assert!(harsh.fully_healed());
            }
        }
    }

    #[test]
    fn random_disasters_never_down_a_majority_simultaneously() {
        for seed in 0..20 {
            for nodes in 2..=7u32 {
                let plan = FaultPlan::random(seed, 1.0, nodes, t(80_000));
                let mut order: Vec<&FaultEvent> = plan.events().iter().collect();
                order.sort_by_key(|e| e.time());
                let mut down: BTreeSet<NodeId> = BTreeSet::new();
                let minority = ((nodes - 1) / 2).max(1) as usize;
                for e in order {
                    match e {
                        FaultEvent::Crash { node, .. } | FaultEvent::VolumeLoss { node, .. } => {
                            down.insert(*node);
                        }
                        FaultEvent::Recover { node, .. } => {
                            down.remove(node);
                        }
                        FaultEvent::Net { .. } => {}
                    }
                    assert!(
                        down.len() <= minority,
                        "seed {seed} n={nodes}: {} nodes down at {} — majority at risk",
                        down.len(),
                        e.time()
                    );
                }
            }
        }
    }

    #[test]
    fn crash_schedule_converts_losslessly() {
        let sched = CrashSchedule::new()
            .crash_at(t(1_000), n(2))
            .recover_at(t(9_000), n(2));
        let plan = FaultPlan::from(&sched);
        assert_eq!(plan.len(), 2);
        assert!(plan.crashes(n(2)));
        assert_eq!(plan.first_crash_time(), Some(t(1_000)));
        assert!(plan.validate(3, t(10_000)).is_ok());
        assert_eq!(plan, FaultPlan::from(sched));
    }

    #[test]
    fn disturbed_nodes_cover_crashes_minorities_and_link_endpoints() {
        let plan = FaultPlan::new()
            .crash_at(t(10), n(4))
            .partition_at(t(20), vec![vec![n(0), n(1), n(2)], vec![n(3), n(4)]])
            .heal_at(t(30))
            .degrade_link_at(t(40), n(2), n(3), SimDuration::from_ticks(100), 0.0)
            .restore_link_at(t(50), n(2), n(3));
        // Both endpoints of the degraded link count: n(2) as source (its
        // delayed heartbeats can get it falsely suspected), n(3) as
        // destination (it misses traffic).
        let d = plan.disturbed_nodes();
        assert_eq!(d, BTreeSet::from([n(2), n(3), n(4)]));
    }

    #[test]
    fn fully_healed_detects_unrepaired_faults() {
        assert!(FaultPlan::new().fully_healed());
        let unrecovered = FaultPlan::new().crash_at(t(10), n(1));
        assert!(!unrecovered.fully_healed());
        let unhealed = FaultPlan::new().partition_at(t(10), vec![vec![n(0)], vec![n(1)]]);
        assert!(!unhealed.fully_healed());
        let still_down = FaultPlan::new().link_down_at(t(10), n(0), n(1));
        assert!(!still_down.fully_healed());
        let still_slow =
            FaultPlan::new().degrade_link_at(t(10), n(0), n(1), SimDuration::from_ticks(5), 0.0);
        assert!(!still_slow.fully_healed());
    }

    #[test]
    fn random_plans_are_deterministic() {
        for seed in 0..30 {
            for &intensity in &[0.2, 0.5, 1.0] {
                let horizon = t(60_000);
                let a = FaultPlan::random(seed, intensity, 5, horizon);
                let b = FaultPlan::random(seed, intensity, 5, horizon);
                assert_eq!(a, b, "seed {seed} intensity {intensity} not reproducible");
            }
        }
    }

    #[test]
    fn random_plans_are_valid_and_survivable() {
        for seed in 0..50 {
            for &intensity in &[0.1, 0.4, 0.7, 1.0] {
                for nodes in 2..=7u32 {
                    let horizon = t(80_000);
                    let plan = FaultPlan::random(seed, intensity, nodes, horizon);
                    plan.validate(nodes, horizon)
                        .unwrap_or_else(|e| panic!("seed {seed} n={nodes}: {e}"));
                    assert!(
                        plan.fully_healed(),
                        "seed {seed} n={nodes}: plan leaves faults unrepaired"
                    );
                    // Rank 0 and a majority stay untouched: everything the
                    // nemesis hits lives in the tail victim pool.
                    let pool_size = ((nodes - 1) / 2).max(1);
                    let disturbed = plan.disturbed_nodes();
                    assert!(
                        !disturbed.contains(&n(0)),
                        "seed {seed} n={nodes}: rank 0 disturbed"
                    );
                    assert!(
                        disturbed
                            .iter()
                            .all(|d| d.index() >= (nodes - pool_size) as usize),
                        "seed {seed} n={nodes}: fault outside the victim pool {disturbed:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn random_plan_composes_crash_partition_and_spike() {
        let plan = FaultPlan::random(42, 0.6, 5, t(80_000));
        assert!(plan.events().iter().any(|e| e.kind() == "crash"));
        assert!(plan.events().iter().any(|e| e.kind() == "partition"));
        assert!(plan.events().iter().any(|e| e.kind() == "degrade"));
        assert!(plan.fault_count() >= 3);
    }

    #[test]
    fn random_plan_degenerate_inputs_are_empty() {
        assert!(FaultPlan::random(1, 0.0, 5, t(80_000)).is_empty());
        assert!(FaultPlan::random(1, 0.5, 1, t(80_000)).is_empty());
        assert!(FaultPlan::random(1, 0.5, 5, t(10)).is_empty());
    }

    #[test]
    fn error_display_is_informative() {
        let e = FaultPlanError::DuplicateCrash {
            node: n(2),
            at: t(9),
        };
        assert!(e.to_string().contains("crashed while already down"));
        let e = FaultPlanError::PastMaxTime {
            at: t(10),
            max_time: t(5),
        };
        assert!(e.to_string().contains("deadline"));
    }
}
