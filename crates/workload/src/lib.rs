//! # repl-workload — workload and fault-load generation
//!
//! Generators for the performance study the paper promised ("taking into
//! account different workloads and failures assumptions", Section 6):
//!
//! * [`WorkloadSpec`] — declarative workload description: item count,
//!   read ratio, zipfian skew, operations per transaction, think time,
//! * [`TxnTemplate`]/[`OpTemplate`] — generated (multi-operation)
//!   transactions over logical items,
//! * [`WorkloadGen`] — the seeded generator,
//! * [`ArrivalStream`] — seeded open-loop inter-arrival streams
//!   (Poisson or uniform), the arrival half of the open-loop engine,
//! * [`Zipf`] — zipfian key sampler (hotspot contention),
//! * [`FaultPlan`] — declarative fault loads: crashes/recoveries,
//!   partitions/heals, link drops and latency spikes, plus the seeded
//!   nemesis generator [`FaultPlan::random`],
//! * [`CrashSchedule`] — the crash-only subset, kept for compatibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrivals;
mod crashes;
mod faults;
mod generator;
mod spec;
mod zipf;

pub use arrivals::{ArrivalDist, ArrivalStream};
pub use crashes::{CrashEvent, CrashSchedule};
pub use faults::{FaultEvent, FaultPlan, FaultPlanError};
pub use generator::{OpTemplate, TxnTemplate, WorkloadGen};
pub use spec::WorkloadSpec;
pub use zipf::Zipf;
