//! Declarative workload description.

use repl_db::Keyspace;
use repl_sim::SimDuration;

/// Parameters of a synthetic workload.
///
/// # Examples
///
/// ```
/// use repl_workload::WorkloadSpec;
///
/// let spec = WorkloadSpec::default()
///     .with_items(1_000)
///     .with_read_ratio(0.8)
///     .with_skew(0.99)
///     .with_ops_per_txn(1);
/// assert_eq!(spec.items, 1_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Number of logical data items.
    pub items: u64,
    /// Fraction of operations that are reads, in `[0, 1]`.
    pub read_ratio: f64,
    /// Zipf exponent over items (0 = uniform).
    pub skew: f64,
    /// Operations per transaction (1 = the paper's single-operation model).
    pub ops_per_txn: u32,
    /// Transactions each client issues.
    pub txns_per_client: u32,
    /// Client think time between transactions (closed loop).
    pub think_time: SimDuration,
    /// Whether generated keys are guaranteed to stay inside `0..items`,
    /// letting the db kernel use dense `Vec`-indexed backing. True for
    /// every generator in this crate; turn off only to model open key
    /// domains (the kernel then falls back to hashed tables).
    pub dense_keyspace: bool,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            items: 100,
            read_ratio: 0.5,
            skew: 0.0,
            ops_per_txn: 1,
            txns_per_client: 20,
            think_time: SimDuration::from_ticks(200),
            dense_keyspace: true,
        }
    }
}

impl WorkloadSpec {
    /// Sets the item count.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0`.
    pub fn with_items(mut self, items: u64) -> Self {
        assert!(items > 0, "workload needs at least one item");
        self.items = items;
        self
    }

    /// Sets the read ratio.
    ///
    /// # Panics
    ///
    /// Panics if outside `[0, 1]`.
    pub fn with_read_ratio(mut self, r: f64) -> Self {
        assert!((0.0..=1.0).contains(&r), "read ratio must be in [0,1]");
        self.read_ratio = r;
        self
    }

    /// Sets the zipf skew.
    pub fn with_skew(mut self, theta: f64) -> Self {
        assert!(theta >= 0.0, "skew must be >= 0");
        self.skew = theta;
        self
    }

    /// Sets operations per transaction.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn with_ops_per_txn(mut self, n: u32) -> Self {
        assert!(n > 0, "transactions need at least one operation");
        self.ops_per_txn = n;
        self
    }

    /// Sets transactions per client.
    pub fn with_txns_per_client(mut self, n: u32) -> Self {
        self.txns_per_client = n;
        self
    }

    /// Sets the think time.
    pub fn with_think_time(mut self, t: SimDuration) -> Self {
        self.think_time = t;
        self
    }

    /// Declares whether the keyspace is bounded (dense kernel backing)
    /// or open (sparse fallback).
    pub fn with_dense_keyspace(mut self, dense: bool) -> Self {
        self.dense_keyspace = dense;
        self
    }

    /// The [`Keyspace`] the db kernel should be built for.
    pub fn keyspace(&self) -> Keyspace {
        if self.dense_keyspace {
            Keyspace::dense(self.items)
        } else {
            Keyspace::sparse(self.items)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain_sets_all_fields() {
        let s = WorkloadSpec::default()
            .with_items(7)
            .with_read_ratio(1.0)
            .with_skew(2.0)
            .with_ops_per_txn(3)
            .with_txns_per_client(9)
            .with_think_time(SimDuration::from_ticks(5));
        assert_eq!(s.items, 7);
        assert_eq!(s.read_ratio, 1.0);
        assert_eq!(s.skew, 2.0);
        assert_eq!(s.ops_per_txn, 3);
        assert_eq!(s.txns_per_client, 9);
        assert_eq!(s.think_time, SimDuration::from_ticks(5));
    }

    #[test]
    fn keyspace_follows_the_dense_flag() {
        let s = WorkloadSpec::default().with_items(64);
        assert_eq!(s.keyspace(), Keyspace::dense(64));
        let s = s.with_dense_keyspace(false);
        assert_eq!(s.keyspace(), Keyspace::sparse(64));
    }

    #[test]
    #[should_panic(expected = "read ratio")]
    fn bad_read_ratio_rejected() {
        let _ = WorkloadSpec::default().with_read_ratio(1.5);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_rejected() {
        let _ = WorkloadSpec::default().with_items(0);
    }

    #[test]
    #[should_panic(expected = "at least one operation")]
    fn zero_ops_rejected() {
        let _ = WorkloadSpec::default().with_ops_per_txn(0);
    }
}
