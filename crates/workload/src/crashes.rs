//! Declarative fault loads: crash (and optional recovery) schedules that
//! the harness applies to a world before a run.

use repl_sim::{NodeId, SimTime};

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashEvent {
    /// Crash the node at the given time.
    Crash(SimTime, NodeId),
    /// Recover the node at the given time.
    Recover(SimTime, NodeId),
}

impl CrashEvent {
    /// The event's time.
    pub fn time(&self) -> SimTime {
        match self {
            CrashEvent::Crash(t, _) | CrashEvent::Recover(t, _) => *t,
        }
    }

    /// The affected node.
    pub fn node(&self) -> NodeId {
        match self {
            CrashEvent::Crash(_, n) | CrashEvent::Recover(_, n) => *n,
        }
    }
}

/// A fault schedule.
///
/// # Examples
///
/// ```
/// use repl_workload::CrashSchedule;
/// use repl_sim::{NodeId, SimTime};
///
/// let sched = CrashSchedule::new()
///     .crash_at(SimTime::from_ticks(1_000), NodeId::new(0))
///     .recover_at(SimTime::from_ticks(9_000), NodeId::new(0));
/// assert_eq!(sched.events().len(), 2);
/// assert!(sched.crashes(NodeId::new(0)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashSchedule {
    events: Vec<CrashEvent>,
}

impl CrashSchedule {
    /// Creates an empty (failure-free) schedule.
    pub fn new() -> Self {
        CrashSchedule::default()
    }

    /// Adds a crash.
    pub fn crash_at(mut self, at: SimTime, node: NodeId) -> Self {
        self.events.push(CrashEvent::Crash(at, node));
        self
    }

    /// Adds a recovery.
    pub fn recover_at(mut self, at: SimTime, node: NodeId) -> Self {
        self.events.push(CrashEvent::Recover(at, node));
        self
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[CrashEvent] {
        &self.events
    }

    /// True if the schedule ever crashes `node`.
    pub fn crashes(&self, node: NodeId) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, CrashEvent::Crash(_, n) if *n == node))
    }

    /// True if the schedule is failure-free.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validates the schedule against a server count and run deadline,
    /// via the [`FaultPlan`](crate::FaultPlan) rules: no recover of a
    /// live node, no crash of an already-crashed node, no events past
    /// `max_time`.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultPlanError`](crate::FaultPlanError)
    /// encountered.
    pub fn validate(&self, nodes: u32, max_time: SimTime) -> Result<(), crate::FaultPlanError> {
        crate::FaultPlan::from(self).validate(nodes, max_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = CrashEvent::Crash(SimTime::from_ticks(5), NodeId::new(2));
        assert_eq!(e.time(), SimTime::from_ticks(5));
        assert_eq!(e.node(), NodeId::new(2));
    }

    #[test]
    fn schedule_tracks_crashes_per_node() {
        let s = CrashSchedule::new().crash_at(SimTime::from_ticks(1), NodeId::new(1));
        assert!(s.crashes(NodeId::new(1)));
        assert!(!s.crashes(NodeId::new(2)));
        assert!(!s.is_empty());
        assert!(CrashSchedule::new().is_empty());
    }

    #[test]
    fn schedule_validation_uses_fault_plan_rules() {
        let ok = CrashSchedule::new()
            .crash_at(SimTime::from_ticks(1_000), NodeId::new(2))
            .recover_at(SimTime::from_ticks(2_000), NodeId::new(2));
        assert!(ok.validate(3, SimTime::from_ticks(10_000)).is_ok());
        let backwards = CrashSchedule::new()
            .recover_at(SimTime::from_ticks(1_000), NodeId::new(2))
            .crash_at(SimTime::from_ticks(2_000), NodeId::new(2));
        assert!(matches!(
            backwards.validate(3, SimTime::from_ticks(10_000)),
            Err(crate::FaultPlanError::RecoverWithoutCrash { .. })
        ));
        let late = CrashSchedule::new().crash_at(SimTime::from_ticks(99_999), NodeId::new(0));
        assert!(matches!(
            late.validate(3, SimTime::from_ticks(10_000)),
            Err(crate::FaultPlanError::PastMaxTime { .. })
        ));
    }
}
