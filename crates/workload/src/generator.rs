//! The seeded transaction generator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use repl_db::{Key, Value};

use crate::spec::WorkloadSpec;
use crate::zipf::Zipf;

/// One generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpTemplate {
    /// Read a logical item.
    Read(Key),
    /// Write a (globally unique) value to a logical item.
    Write(Key, Value),
}

impl OpTemplate {
    /// The accessed key.
    pub fn key(&self) -> Key {
        match self {
            OpTemplate::Read(k) | OpTemplate::Write(k, _) => *k,
        }
    }

    /// True for writes.
    pub fn is_write(&self) -> bool {
        matches!(self, OpTemplate::Write(..))
    }
}

/// One generated transaction: an ordered list of operations.
///
/// Keys within a transaction are distinct and the write values are unique
/// across the whole generator, which the consistency oracles rely on to
/// identify which write a read observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnTemplate {
    /// The operations, in program order.
    pub ops: Vec<OpTemplate>,
}

impl TxnTemplate {
    /// True if the transaction only reads.
    pub fn is_read_only(&self) -> bool {
        self.ops.iter().all(|o| !o.is_write())
    }

    /// The distinct keys accessed.
    pub fn keys(&self) -> Vec<Key> {
        let mut v: Vec<Key> = self.ops.iter().map(|o| o.key()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Seeded workload generator.
///
/// # Examples
///
/// ```
/// use repl_workload::{WorkloadGen, WorkloadSpec};
///
/// let spec = WorkloadSpec::default().with_ops_per_txn(2);
/// let mut gen = WorkloadGen::new(&spec, 42);
/// let txn = gen.next_txn();
/// assert_eq!(txn.ops.len(), 2);
/// ```
#[derive(Debug)]
pub struct WorkloadGen {
    spec: WorkloadSpec,
    zipf: Zipf,
    rng: SmallRng,
    next_value: i64,
}

impl WorkloadGen {
    /// Creates a generator for `spec` with the given seed.
    pub fn new(spec: &WorkloadSpec, seed: u64) -> Self {
        WorkloadGen {
            spec: spec.clone(),
            zipf: Zipf::new(spec.items, spec.skew),
            rng: SmallRng::seed_from_u64(seed),
            next_value: 1,
        }
    }

    /// Generates the next transaction.
    pub fn next_txn(&mut self) -> TxnTemplate {
        let n = self.spec.ops_per_txn as usize;
        let mut keys: Vec<Key> = Vec::with_capacity(n);
        // Distinct keys per transaction (retry sampling; the domain is
        // always at least as large as the transaction in practice).
        let mut guard = 0;
        while keys.len() < n && guard < 10_000 {
            let k = Key(self.zipf.sample(&mut self.rng));
            if !keys.contains(&k) {
                keys.push(k);
            }
            guard += 1;
        }
        while keys.len() < n {
            // Degenerate domains: fill sequentially.
            let k = Key(keys.len() as u64 % self.spec.items);
            keys.push(k);
        }
        let ops = keys
            .into_iter()
            .map(|k| {
                if self.rng.gen::<f64>() < self.spec.read_ratio {
                    OpTemplate::Read(k)
                } else {
                    let v = Value(self.next_value);
                    self.next_value += 1;
                    OpTemplate::Write(k, v)
                }
            })
            .collect();
        TxnTemplate { ops }
    }

    /// Generates a batch of transactions.
    pub fn take_txns(&mut self, count: usize) -> Vec<TxnTemplate> {
        (0..count).map(|_| self.next_txn()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let spec = WorkloadSpec::default().with_ops_per_txn(3).with_skew(0.9);
        let a: Vec<TxnTemplate> = WorkloadGen::new(&spec, 5).take_txns(20);
        let b: Vec<TxnTemplate> = WorkloadGen::new(&spec, 5).take_txns(20);
        assert_eq!(a, b);
        let c: Vec<TxnTemplate> = WorkloadGen::new(&spec, 6).take_txns(20);
        assert_ne!(a, c);
    }

    #[test]
    fn keys_within_txn_are_distinct() {
        let spec = WorkloadSpec::default().with_items(10).with_ops_per_txn(5);
        let mut gen = WorkloadGen::new(&spec, 1);
        for _ in 0..50 {
            let txn = gen.next_txn();
            let keys = txn.keys();
            assert_eq!(keys.len(), 5, "duplicate keys in {txn:?}");
        }
    }

    #[test]
    fn write_values_are_globally_unique() {
        let spec = WorkloadSpec::default()
            .with_read_ratio(0.0)
            .with_ops_per_txn(2);
        let mut gen = WorkloadGen::new(&spec, 2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            for op in gen.next_txn().ops {
                if let OpTemplate::Write(_, v) = op {
                    assert!(seen.insert(v), "duplicate write value {v:?}");
                }
            }
        }
    }

    #[test]
    fn read_ratio_extremes() {
        let spec = WorkloadSpec::default().with_read_ratio(1.0);
        let mut gen = WorkloadGen::new(&spec, 3);
        assert!(gen.take_txns(50).iter().all(|t| t.is_read_only()));
        let spec = WorkloadSpec::default().with_read_ratio(0.0);
        let mut gen = WorkloadGen::new(&spec, 3);
        assert!(gen
            .take_txns(50)
            .iter()
            .all(|t| t.ops.iter().all(|o| o.is_write())));
    }

    #[test]
    fn skew_prefers_hot_keys() {
        let spec = WorkloadSpec::default().with_items(1000).with_skew(1.2);
        let mut gen = WorkloadGen::new(&spec, 4);
        let hot = gen
            .take_txns(2000)
            .iter()
            .filter(|t| t.ops[0].key().0 < 10)
            .count();
        assert!(hot > 600, "only {hot} of 2000 hit the hot set");
    }
}
