//! Deterministic inter-arrival streams for open-loop load generation.
//!
//! An open-loop driver decides *when* the next operation arrives
//! independently of when earlier operations complete. This module
//! provides the arrival side of that driver as a seeded, replayable
//! stream of inter-arrival gaps, decoupled from any actor: the runner's
//! aggregated open-loop engine draws one stream per client group, so a
//! million clients cost one generator instead of a million actors.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The shape of an arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArrivalDist {
    /// Poisson process: exponentially distributed gaps. The aggregate of
    /// independent Poisson sources is itself Poisson, which is what makes
    /// per-group aggregation exact for this distribution.
    #[default]
    Poisson,
    /// Uniform gaps in `[0, 2·mean]` — same mean rate, bounded burstiness.
    Uniform,
}

/// A seeded stream of inter-arrival gaps with a fixed mean (in ticks).
///
/// Gaps are drawn from the stream's own [`SmallRng`], never from the
/// simulator's world RNG, so adding or removing an arrival stream cannot
/// perturb any other randomness in a run.
///
/// # Examples
///
/// ```
/// use repl_workload::{ArrivalDist, ArrivalStream};
///
/// let mut a = ArrivalStream::new(ArrivalDist::Poisson, 100.0, 7);
/// let mut b = ArrivalStream::new(ArrivalDist::Poisson, 100.0, 7);
/// let gaps: Vec<u64> = (0..32).map(|_| a.next_gap()).collect();
/// assert_eq!(gaps, (0..32).map(|_| b.next_gap()).collect::<Vec<u64>>());
/// ```
#[derive(Debug)]
pub struct ArrivalStream {
    dist: ArrivalDist,
    mean: f64,
    rng: SmallRng,
}

impl ArrivalStream {
    /// Creates a stream with the given distribution, mean gap (ticks,
    /// may be fractional for aggregated high-rate processes) and seed.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn new(dist: ArrivalDist, mean: f64, seed: u64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "arrival mean must be positive, got {mean}"
        );
        ArrivalStream {
            dist,
            mean,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The stream's mean gap in ticks.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws the next inter-arrival gap in whole ticks. Gaps round to the
    /// nearest tick and may be zero when the mean is below a tick (an
    /// aggregated process faster than the clock resolution).
    pub fn next_gap(&mut self) -> u64 {
        let gap = match self.dist {
            ArrivalDist::Poisson => {
                let u: f64 = self.rng.gen_range(1e-12..1.0f64);
                -u.ln() * self.mean
            }
            ArrivalDist::Uniform => self.rng.gen_range(0.0..2.0 * self.mean),
        };
        // Round half-up; ticks are u64 so saturate on absurd draws.
        if gap >= u64::MAX as f64 {
            u64::MAX
        } else {
            (gap + 0.5) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        for dist in [ArrivalDist::Poisson, ArrivalDist::Uniform] {
            let a: Vec<u64> = {
                let mut s = ArrivalStream::new(dist, 250.0, 11);
                (0..100).map(|_| s.next_gap()).collect()
            };
            let b: Vec<u64> = {
                let mut s = ArrivalStream::new(dist, 250.0, 11);
                (0..100).map(|_| s.next_gap()).collect()
            };
            assert_eq!(a, b, "{dist:?}");
            let c: Vec<u64> = {
                let mut s = ArrivalStream::new(dist, 250.0, 12);
                (0..100).map(|_| s.next_gap()).collect()
            };
            assert_ne!(a, c, "{dist:?}: different seed, same stream");
        }
    }

    #[test]
    fn empirical_mean_tracks_configured_mean() {
        for dist in [ArrivalDist::Poisson, ArrivalDist::Uniform] {
            let mut s = ArrivalStream::new(dist, 1_000.0, 3);
            let n = 20_000u64;
            let total: u64 = (0..n).map(|_| s.next_gap()).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (900.0..1_100.0).contains(&mean),
                "{dist:?}: empirical mean {mean} too far from 1000"
            );
        }
    }

    #[test]
    fn uniform_gaps_are_bounded() {
        let mut s = ArrivalStream::new(ArrivalDist::Uniform, 100.0, 5);
        for _ in 0..10_000 {
            assert!(s.next_gap() <= 200);
        }
    }

    #[test]
    fn sub_tick_means_yield_zero_gaps() {
        // An aggregated process at 10 arrivals per tick: most gaps round
        // to zero, some to one; the stream must not get stuck.
        let mut s = ArrivalStream::new(ArrivalDist::Poisson, 0.1, 9);
        let gaps: Vec<u64> = (0..1_000).map(|_| s.next_gap()).collect();
        assert!(gaps.iter().any(|&g| g == 0));
        assert!(gaps.iter().sum::<u64>() < 1_000);
    }

    #[test]
    #[should_panic(expected = "arrival mean must be positive")]
    fn zero_mean_rejected() {
        let _ = ArrivalStream::new(ArrivalDist::Poisson, 0.0, 1);
    }
}
