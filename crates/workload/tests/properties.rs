//! Property-based tests for the fault-load generators: nemesis plans are
//! reproducible, valid by construction, fully healed, and survivable
//! (rank 0 and a majority of replicas stay untouched) for arbitrary
//! seeds, intensities and group sizes.

use proptest::prelude::*;
use repl_sim::{NodeId, SimDuration, SimTime};
use repl_workload::{CrashSchedule, FaultPlan};

proptest! {
    /// The same (seed, intensity, nodes, horizon) always yields the same
    /// plan — the reproducibility contract fault sweeps rely on.
    #[test]
    fn nemesis_plans_are_reproducible(
        seed in any::<u64>(),
        intensity in 0.0f64..=1.0,
        nodes in 2u32..=9,
        horizon in 0u64..=200_000,
    ) {
        let h = SimTime::from_ticks(horizon);
        let a = FaultPlan::random(seed, intensity, nodes, h);
        let b = FaultPlan::random(seed, intensity, nodes, h);
        prop_assert_eq!(a, b);
    }

    /// Generated plans always validate against their own parameters, heal
    /// every fault they inject, and confine the blast radius to the tail
    /// victim pool — rank 0 and a majority are never disturbed.
    #[test]
    fn nemesis_plans_are_valid_survivable_and_healed(
        seed in any::<u64>(),
        intensity in 0.0f64..=1.0,
        nodes in 2u32..=9,
    ) {
        let h = SimTime::from_ticks(120_000);
        let plan = FaultPlan::random(seed, intensity, nodes, h);
        prop_assert!(plan.validate(nodes, h).is_ok());
        prop_assert!(plan.fully_healed());
        let pool = ((nodes - 1) / 2).max(1);
        let disturbed = plan.disturbed_nodes();
        prop_assert!(!disturbed.contains(&NodeId::new(0)));
        for d in &disturbed {
            prop_assert!(d.index() >= (nodes - pool) as usize);
        }
        prop_assert!(disturbed.len() <= pool as usize);
    }

    /// At every instant of a nemesis plan — any seed, any intensity up to
    /// the disaster tier — the set of down nodes (crashed or volume-lost)
    /// stays within the minority victim pool: a majority of replicas is
    /// never down, and in particular never wiped, simultaneously.
    #[test]
    fn nemesis_never_downs_a_majority_simultaneously(
        seed in any::<u64>(),
        intensity in 0.0f64..=1.0,
        nodes in 2u32..=9,
    ) {
        use repl_workload::FaultEvent;
        let h = SimTime::from_ticks(120_000);
        let plan = FaultPlan::random(seed, intensity, nodes, h);
        let mut order: Vec<&FaultEvent> = plan.events().iter().collect();
        order.sort_by_key(|e| e.time());
        let minority = ((nodes - 1) / 2).max(1) as usize;
        let mut down = std::collections::BTreeSet::new();
        let mut wiped = std::collections::BTreeSet::new();
        for e in order {
            match e {
                FaultEvent::Crash { node, .. } => { down.insert(*node); }
                FaultEvent::VolumeLoss { node, .. } => {
                    down.insert(*node);
                    wiped.insert(*node);
                }
                FaultEvent::Recover { node, .. } => {
                    down.remove(node);
                    wiped.remove(node);
                }
                FaultEvent::Net { .. } => {}
            }
            prop_assert!(down.len() <= minority);
            prop_assert!(wiped.len() <= minority);
        }
    }

    /// Explicitly composed disaster + outage + partition plans stay valid
    /// and fully healed as long as each node's down intervals are
    /// serialised — the composition the P12 nemesis test drives.
    #[test]
    fn disaster_crash_partition_composition_stays_valid(
        raw in proptest::collection::vec(
            (0u64..=40_000, 1u32..=4, 1u64..=8_000, any::<bool>()), 0..6),
        cut in 1u64..=40_000,
    ) {
        // Serialise per-node down intervals, alternating crash outages and
        // volume-loss disasters, then overlay a partition + heal.
        let mut next_free = [0u64; 5];
        let mut plan = FaultPlan::new();
        let mut raw = raw;
        raw.sort_by_key(|&(at, node, down, _)| (at, node, down));
        for (at, node, down, disaster) in raw {
            let start = at.max(next_free[node as usize]);
            next_free[node as usize] = start + down + 1;
            let (n, t, d) = (
                NodeId::new(node),
                SimTime::from_ticks(start),
                SimDuration::from_ticks(down),
            );
            plan = if disaster {
                plan.disaster_at(t, n, d)
            } else {
                plan.outage_at(t, n, d)
            };
        }
        plan = plan
            .partition_at(
                SimTime::from_ticks(cut),
                vec![
                    vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
                    vec![NodeId::new(3), NodeId::new(4)],
                ],
            )
            .heal_at(SimTime::from_ticks(cut + 5_000));
        let deadline = SimTime::from_ticks(200_000);
        prop_assert!(plan.validate(5, deadline).is_ok());
        prop_assert!(plan.fully_healed());
        prop_assert!(!plan.disturbed_nodes().contains(&NodeId::new(0)));
    }

    /// Crash-only schedules and their FaultPlan conversion agree on
    /// validity, whatever the event times — the compatibility shim must
    /// not change what is accepted.
    #[test]
    fn crash_schedule_and_fault_plan_validation_agree(
        crash in 0u64..=50_000,
        recover in 0u64..=50_000,
        node in 0u32..=4,
        servers in 1u32..=4,
    ) {
        let sched = CrashSchedule::new()
            .crash_at(SimTime::from_ticks(crash), NodeId::new(node))
            .recover_at(SimTime::from_ticks(recover), NodeId::new(node));
        let deadline = SimTime::from_ticks(60_000);
        let direct = sched.validate(servers, deadline);
        let via_plan = FaultPlan::from(&sched).validate(servers, deadline);
        prop_assert_eq!(direct, via_plan);
    }

    /// Paired outages round-trip: a plan built purely from `outage_at`
    /// always validates, fully heals, and `outages()` recovers exactly
    /// the scheduled (node, crash time, downtime) triples — whatever the
    /// order, spacing, or per-node overlap the generator produces.
    #[test]
    fn paired_outages_round_trip_through_the_distribution(
        raw in proptest::collection::vec((0u64..=40_000, 0u32..=4, 1u64..=10_000), 0..6),
    ) {
        // Serialise overlapping same-node outages: each node's next crash
        // starts strictly after its previous recovery.
        let mut next_free = [0u64; 5];
        let mut scheduled: Vec<(NodeId, SimTime, SimDuration)> = Vec::new();
        let mut plan = FaultPlan::new();
        let mut raw = raw;
        raw.sort();
        for (at, node, down) in raw {
            let start = at.max(next_free[node as usize]);
            next_free[node as usize] = start + down + 1;
            let (n, t, d) = (
                NodeId::new(node),
                SimTime::from_ticks(start),
                SimDuration::from_ticks(down),
            );
            plan = plan.outage_at(t, n, d);
            scheduled.push((n, t, d));
        }
        let deadline = SimTime::from_ticks(200_000);
        prop_assert!(plan.validate(5, deadline).is_ok());
        prop_assert!(plan.fully_healed());
        let mut expected: Vec<(NodeId, SimTime, Option<SimDuration>)> =
            scheduled.into_iter().map(|(n, t, d)| (n, t, Some(d))).collect();
        expected.sort_by_key(|&(n, t, _)| (t, n));
        prop_assert_eq!(plan.outages(), expected);
    }
}
