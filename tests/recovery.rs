//! Crash-*recovery* tests: a secondary that dies, misses updates, and
//! comes back must catch up from the primary's redo log (log shipping).

use replication::sim::{NodeId, SimTime};
use replication::workload::CrashSchedule;
use replication::{run, RunConfig, Technique, WorkloadSpec};

fn updates(n: u32) -> WorkloadSpec {
    WorkloadSpec::default()
        .with_items(32)
        .with_read_ratio(0.0)
        .with_txns_per_client(n)
}

#[test]
fn recovered_secondary_catches_up_from_the_log() {
    // Secondary (server 2) is dead for the middle of the run; updates
    // committed meanwhile are lost on the wire. After recovery it must
    // fetch the log suffix and converge.
    let cfg = RunConfig::new(Technique::LazyPrimary)
        .with_servers(3)
        .with_clients(2)
        .with_seed(307)
        .with_crashes(
            CrashSchedule::new()
                .crash_at(SimTime::from_ticks(1_500), NodeId::new(2))
                .recover_at(SimTime::from_ticks(15_000), NodeId::new(2)),
        )
        .with_workload(updates(10));
    let report = run(&cfg);
    assert_eq!(report.ops_unanswered, 0, "lazy primary must keep serving");
    assert!(
        report.converged(),
        "recovered secondary did not catch up: {:?}",
        report.fingerprints
    );
}

#[test]
fn recovery_mid_stream_handles_gaps() {
    // Several crash/recover cycles; each gap must be filled via catch-up.
    let cfg = RunConfig::new(Technique::LazyPrimary)
        .with_servers(4)
        .with_clients(3)
        .with_seed(311)
        .with_crashes(
            CrashSchedule::new()
                .crash_at(SimTime::from_ticks(1_000), NodeId::new(3))
                .recover_at(SimTime::from_ticks(6_000), NodeId::new(3))
                .crash_at(SimTime::from_ticks(9_000), NodeId::new(3))
                .recover_at(SimTime::from_ticks(14_000), NodeId::new(3)),
        )
        .with_workload(updates(12));
    let report = run(&cfg);
    assert_eq!(report.ops_unanswered, 0);
    assert!(
        report.converged(),
        "gapped secondary diverged: {:?}",
        report.fingerprints
    );
}

#[test]
fn never_recovered_secondary_is_the_only_divergent_replica() {
    let cfg = RunConfig::new(Technique::LazyPrimary)
        .with_servers(3)
        .with_clients(2)
        .with_seed(313)
        .with_crashes(CrashSchedule::new().crash_at(SimTime::from_ticks(1_500), NodeId::new(2)))
        .with_workload(updates(8));
    let report = run(&cfg);
    assert_eq!(report.ops_unanswered, 0);
    // The corpse lags; the live pair agrees.
    assert_eq!(report.fingerprints[0], report.fingerprints[1]);
}
