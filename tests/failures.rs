//! Failure-injection integration tests: the fault-tolerance claims of the
//! paper's Section 3 (and the hot-standby story of Section 4.3), verified
//! end to end across the full protocol stacks.

use replication::core::protocols::common::AbcastImpl;
use replication::sim::{NodeId, SimTime};
use replication::workload::CrashSchedule;
use replication::{run, RunConfig, Technique, WorkloadSpec};

fn crash_zero_at(t: u64) -> CrashSchedule {
    CrashSchedule::new().crash_at(SimTime::from_ticks(t), NodeId::new(0))
}

fn updates(n: u32) -> WorkloadSpec {
    WorkloadSpec::default()
        .with_items(64)
        .with_read_ratio(0.0)
        .with_txns_per_client(n)
}

#[test]
fn active_replication_masks_replica_crash() {
    let cfg = RunConfig::new(Technique::Active)
        .with_servers(5)
        .with_clients(2)
        .with_seed(3)
        .with_abcast(AbcastImpl::Consensus)
        .with_crashes(crash_zero_at(15_000))
        .with_workload(updates(8));
    let report = run(&cfg);
    assert_eq!(report.ops_unanswered, 0, "crash must be transparent");
    // Survivors (indices 1..) agree; index 0 is the corpse.
    assert!(
        report.fingerprints[1..].windows(2).all(|w| w[0] == w[1]),
        "survivors diverged: {:?}",
        report.fingerprints
    );
}

#[test]
fn passive_replication_survives_primary_crash_with_view_change() {
    let cfg = RunConfig::new(Technique::Passive)
        .with_servers(4)
        .with_clients(2)
        .with_seed(5)
        .with_crashes(crash_zero_at(12_000))
        .with_workload(updates(8));
    let report = run(&cfg);
    assert_eq!(report.ops_unanswered, 0, "failover must complete the run");
    assert!(
        report.fingerprints[1..].windows(2).all(|w| w[0] == w[1]),
        "survivors diverged: {:?}",
        report.fingerprints
    );
}

#[test]
fn semi_passive_survives_coordinator_crash_without_views() {
    let cfg = RunConfig::new(Technique::SemiPassive)
        .with_servers(3)
        .with_clients(2)
        .with_seed(7)
        .with_crashes(crash_zero_at(10_000))
        .with_workload(updates(6));
    let report = run(&cfg);
    assert_eq!(report.ops_unanswered, 0);
    assert!(report.fingerprints[1..].windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn eager_primary_hot_standby_takes_over() {
    let cfg = RunConfig::new(Technique::EagerPrimary)
        .with_servers(3)
        .with_clients(2)
        .with_seed(9)
        .with_crashes(crash_zero_at(12_000))
        .with_workload(updates(8));
    let report = run(&cfg);
    assert_eq!(report.ops_unanswered, 0, "takeover failed");
    assert!(report.fingerprints[1..].windows(2).all(|w| w[0] == w[1]));
    // Committed history (survivor side) stays one-copy serializable.
    report
        .check_one_copy_serializable()
        .expect("takeover must not break 1SR");
}

#[test]
fn failover_pause_is_visible_in_latency_but_bounded() {
    // The operation in flight during the crash absorbs detection +
    // reconfiguration. It must be slower than the median but the run must
    // still finish well before the deadline.
    let cfg = RunConfig::new(Technique::Passive)
        .with_servers(3)
        .with_clients(1)
        .with_seed(13)
        .with_crashes(crash_zero_at(2_000))
        .with_workload(updates(10));
    let report = run(&cfg);
    let mut lat = report.latencies.clone();
    let median = lat.percentile(0.5);
    let worst = lat.percentile(1.0);
    assert!(
        worst.ticks() > 2 * median.ticks(),
        "no visible failover pause? median={median} worst={worst}"
    );
    assert!(report.duration < SimTime::from_ticks(5_000_000));
}

#[test]
fn crash_after_quiescence_changes_nothing() {
    let quiet = RunConfig::new(Technique::Active)
        .with_clients(1)
        .with_seed(21)
        .with_workload(updates(3));
    let baseline = run(&quiet);
    let crashed = run(&quiet.clone().with_crashes(crash_zero_at(20_000_000)));
    assert_eq!(baseline.ops_completed, crashed.ops_completed);
}

#[test]
fn multiple_crashes_leave_a_majority_and_still_finish() {
    let cfg = RunConfig::new(Technique::Active)
        .with_servers(5)
        .with_clients(2)
        .with_seed(29)
        .with_abcast(AbcastImpl::Consensus)
        .with_crashes(
            CrashSchedule::new()
                .crash_at(SimTime::from_ticks(10_000), NodeId::new(0))
                .crash_at(SimTime::from_ticks(40_000), NodeId::new(1)),
        )
        .with_workload(updates(8));
    let report = run(&cfg);
    assert_eq!(report.ops_unanswered, 0, "majority alive must suffice");
    assert!(report.fingerprints[2..].windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn certification_with_consensus_abcast_survives_crash() {
    // Certification's agreement rests entirely on the total order; the
    // order must survive a replica crash when backed by consensus.
    let cfg = RunConfig::new(Technique::Certification)
        .with_servers(5)
        .with_clients(3)
        .with_seed(31)
        .with_abcast(AbcastImpl::Consensus)
        .with_crashes(crash_zero_at(10_000))
        .with_workload(updates(6));
    let report = run(&cfg);
    assert_eq!(
        report.ops_unanswered, 0,
        "certification stalled after crash"
    );
    assert!(
        report.fingerprints[1..].windows(2).all(|w| w[0] == w[1]),
        "survivor certifiers diverged: {:?}",
        report.fingerprints
    );
    report
        .check_one_copy_serializable()
        .expect("crash must not corrupt certified history");
}

#[test]
fn eager_ue_abcast_with_consensus_survives_delegate_crash() {
    let cfg = RunConfig::new(Technique::EagerUpdateEverywhereAbcast)
        .with_servers(5)
        .with_clients(3)
        .with_seed(37)
        .with_abcast(AbcastImpl::Consensus)
        .with_crashes(crash_zero_at(10_000))
        .with_workload(updates(6));
    let report = run(&cfg);
    assert_eq!(
        report.ops_unanswered, 0,
        "clients of the dead delegate stuck"
    );
    assert!(report.fingerprints[1..].windows(2).all(|w| w[0] == w[1]));
    report
        .check_one_copy_serializable()
        .expect("1SR after crash");
}
