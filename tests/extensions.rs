//! Tests for the paper's "orthogonal" extensions: read-one/write-all
//! locking (§5.4.1's quorum note) and ABCAST-determined after-commit
//! order for lazy reconciliation (§4.6's suggested alternative).

use replication::core::protocols::lazy_ue::ReconcileMode;
use replication::sim::SimDuration;
use replication::{run, RunConfig, Technique, WorkloadSpec};

fn read_heavy(txns: u32) -> WorkloadSpec {
    WorkloadSpec::default()
        .with_items(64)
        .with_read_ratio(0.9)
        .with_txns_per_client(txns)
}

#[test]
fn rowa_cuts_read_cost_without_losing_serializability() {
    let base = RunConfig::new(Technique::EagerUpdateEverywhereLocking)
        .with_servers(4)
        .with_clients(3)
        .with_seed(211)
        .with_trace(false)
        .with_workload(read_heavy(12));
    let all_sites = run(&base.clone());
    let rowa = run(&base.with_rowa(true));
    assert_eq!(rowa.ops_unanswered, 0);
    assert!(
        rowa.messages_per_op() < all_sites.messages_per_op(),
        "ROWA should save read messages: {} vs {}",
        rowa.messages_per_op(),
        all_sites.messages_per_op()
    );
    assert!(
        rowa.latencies.mean() < all_sites.latencies.mean(),
        "local read locks should answer faster: {} vs {}",
        rowa.latencies.mean(),
        all_sites.latencies.mean()
    );
    assert!(rowa.converged());
    rowa.check_one_copy_serializable()
        .expect("ROWA must preserve 1SR: reads lock the local copy, writes lock all copies");
}

#[test]
fn rowa_under_write_contention_still_serializable() {
    let cfg = RunConfig::new(Technique::EagerUpdateEverywhereLocking)
        .with_servers(3)
        .with_clients(4)
        .with_seed(223)
        .with_rowa(true)
        .with_trace(false)
        .with_workload(
            WorkloadSpec::default()
                .with_items(8)
                .with_read_ratio(0.5)
                .with_ops_per_txn(2)
                .with_skew(1.0)
                .with_txns_per_client(8),
        );
    let report = run(&cfg);
    assert_eq!(report.ops_unanswered, 0);
    assert!(report.converged());
    report
        .check_one_copy_serializable()
        .expect("1SR under contention");
}

#[test]
fn abcast_reconciliation_converges_on_conflicts() {
    // Hot-key writers from every site; the ABCAST after-commit order must
    // drive all replicas to the same final state.
    let cfg = RunConfig::new(Technique::LazyUpdateEverywhere)
        .with_servers(4)
        .with_clients(4)
        .with_seed(227)
        .with_reconcile(ReconcileMode::AbcastOrder)
        .with_propagation_delay(SimDuration::from_ticks(2_000))
        .with_trace(false)
        .with_workload(
            WorkloadSpec::default()
                .with_items(4)
                .with_read_ratio(0.0)
                .with_skew(1.2)
                .with_txns_per_client(8),
        );
    let report = run(&cfg);
    assert_eq!(report.ops_unanswered, 0);
    assert!(
        report.converged(),
        "total-order reconciliation must converge: {:?}",
        report.fingerprints
    );
    assert!(
        report.reconciliations > 0,
        "conflicting optimistic updates should have been overridden"
    );
}

#[test]
fn both_reconcile_modes_agree_on_disjoint_workloads() {
    // With no conflicts the reconciliation rule must not matter.
    let workload = WorkloadSpec::default()
        .with_items(256)
        .with_read_ratio(0.0)
        .with_txns_per_client(6);
    let mk = |mode| {
        run(&RunConfig::new(Technique::LazyUpdateEverywhere)
            .with_servers(3)
            .with_clients(3)
            .with_seed(229)
            .with_reconcile(mode)
            .with_propagation_delay(SimDuration::from_ticks(1_000))
            .with_trace(false)
            .with_workload(workload.clone()))
    };
    let lww = mk(ReconcileMode::Lww);
    let ab = mk(ReconcileMode::AbcastOrder);
    assert!(lww.converged() && ab.converged());
    assert_eq!(lww.reconciliations, 0);
    assert_eq!(ab.reconciliations, 0);
    // Same committed values at every site, independent of rule.
    assert_eq!(lww.fingerprints[0], ab.fingerprints[0]);
}

#[test]
fn abcast_reconciliation_is_lazy_in_phases_but_ordered_in_outcome() {
    let cfg = RunConfig::new(Technique::LazyUpdateEverywhere)
        .with_servers(3)
        .with_clients(1)
        .with_seed(233)
        .with_reconcile(ReconcileMode::AbcastOrder)
        .with_propagation_delay(SimDuration::from_ticks(2_000))
        .with_workload(
            WorkloadSpec::default()
                .with_items(8)
                .with_read_ratio(0.0)
                .with_txns_per_client(4),
        );
    let report = run(&cfg);
    // Still lazy: END before AC.
    let sk = report.canonical_skeleton().expect("ops completed");
    assert!(
        sk.responds_before_agreement(),
        "AbcastOrder must stay lazy: {sk}"
    );
    assert!(report.converged());
}
