//! End-to-end consistency verification: run each technique on a register
//! workload and feed the *client-observed* history to the oracles of the
//! paper's Section 2.2.

use replication::core::consistency::{
    check_linearizable, check_sequentially_consistent, register_histories,
};
use replication::db::Value;
use replication::sim::SimDuration;
use replication::{run, Guarantee, RunConfig, Technique, WorkloadSpec};

fn register_workload(seed: u64) -> WorkloadSpec {
    // Few items, single-op transactions, mixed reads/writes: a classic
    // register workload the Wing–Gong checker can digest.
    let _ = seed;
    WorkloadSpec::default()
        .with_items(4)
        .with_read_ratio(0.5)
        .with_skew(0.5)
        .with_txns_per_client(8)
}

#[test]
fn distributed_systems_techniques_are_linearizable() {
    for technique in [
        Technique::Active,
        Technique::Passive,
        Technique::SemiActive,
        Technique::SemiPassive,
    ] {
        let cfg = RunConfig::new(technique)
            .with_servers(3)
            .with_clients(3)
            .with_seed(41)
            .with_workload(register_workload(41));
        let report = run(&cfg);
        for (key, ops) in register_histories(&report.records) {
            check_linearizable(&ops, Value(0)).unwrap_or_else(|e| {
                panic!("{technique}: key {key} not linearizable: {e}\nops: {ops:#?}")
            });
        }
    }
}

#[test]
fn eager_database_techniques_are_sequentially_consistent_on_registers() {
    // 1SR does not imply linearizability, but for these implementations
    // the register histories should at least be sequentially consistent.
    for technique in [
        Technique::EagerPrimary,
        Technique::EagerUpdateEverywhereLocking,
        Technique::EagerUpdateEverywhereAbcast,
        Technique::Certification,
    ] {
        let cfg = RunConfig::new(technique)
            .with_servers(3)
            .with_clients(3)
            .with_seed(43)
            .with_workload(register_workload(43));
        let report = run(&cfg);
        for (key, ops) in register_histories(&report.records) {
            check_sequentially_consistent(&ops, Value(0))
                .unwrap_or_else(|e| panic!("{technique}: key {key}: {e}"));
        }
    }
}

#[test]
fn lazy_techniques_produce_stale_reads_that_strong_ones_never_do() {
    let workload = WorkloadSpec::default()
        .with_items(3)
        .with_read_ratio(0.6)
        .with_txns_per_client(12)
        .with_think_time(SimDuration::from_ticks(500));
    // Strong techniques: zero stale reads, across several seeds.
    for technique in [Technique::Active, Technique::EagerUpdateEverywhereAbcast] {
        for seed in [1, 2, 3] {
            let report = run(&RunConfig::new(technique)
                .with_servers(3)
                .with_clients(3)
                .with_seed(seed)
                .with_workload(workload.clone()));
            assert!(
                report.stale_reads().is_empty(),
                "{technique} seed {seed}: stale reads in a strong technique: {:?}",
                report.stale_reads()
            );
        }
    }
    // Lazy primary with a wide propagation window: staleness appears.
    let mut total_stale = 0;
    for seed in [1, 2, 3, 4, 5] {
        let report = run(&RunConfig::new(Technique::LazyPrimary)
            .with_servers(3)
            .with_clients(3)
            .with_seed(seed)
            .with_propagation_delay(SimDuration::from_ticks(30_000))
            .with_workload(workload.clone()));
        total_stale += report.stale_reads().len();
    }
    assert!(
        total_stale > 0,
        "lazy primary with delayed propagation should show stale reads"
    );
}

#[test]
fn certification_aborts_exactly_when_reads_went_stale() {
    // A hot single key with read-modify-writes from several clients: some
    // transactions must abort, and all sites must agree on which.
    let cfg = RunConfig::new(Technique::Certification)
        .with_servers(3)
        .with_clients(4)
        .with_seed(47)
        .with_workload(
            WorkloadSpec::default()
                .with_items(2)
                .with_read_ratio(0.5)
                .with_ops_per_txn(2)
                .with_skew(1.5)
                .with_txns_per_client(8)
                .with_think_time(SimDuration::from_ticks(50)),
        );
    let report = run(&cfg);
    assert!(report.ops_aborted > 0, "hot-key certification should abort");
    assert!(report.converged(), "verdicts must agree at all sites");
    report
        .check_one_copy_serializable()
        .expect("whatever committed must be 1SR");
}

#[test]
fn lazy_update_everywhere_violates_strong_criteria_but_converges() {
    let cfg = RunConfig::new(Technique::LazyUpdateEverywhere)
        .with_servers(3)
        .with_clients(3)
        .with_seed(53)
        .with_propagation_delay(SimDuration::from_ticks(5_000))
        .with_workload(
            WorkloadSpec::default()
                .with_items(2)
                .with_read_ratio(0.3)
                .with_skew(1.0)
                .with_txns_per_client(10),
        );
    let report = run(&cfg);
    assert!(report.converged(), "LWW must converge after quiescence");
    assert_eq!(
        report.technique.info().guarantee,
        Guarantee::Weak,
        "metadata sanity"
    );
    // With hot keys and delayed propagation something must have given:
    // either reads went stale or updates were reconciled away.
    assert!(
        report.reconciliations > 0 || !report.stale_reads().is_empty(),
        "no observable weakness despite conflicts"
    );
}
