//! Randomized soak tests: every technique, many seeds, mixed workloads.
//! The invariants checked are the ones a downstream user relies on
//! unconditionally: runs terminate, answered operations are exactly-once,
//! replicas converge, and strong techniques stay one-copy serializable.

use replication::{run, Guarantee, RunConfig, Technique, WorkloadSpec};

fn mixed_workload(seed: u64) -> WorkloadSpec {
    // Derive workload parameters from the seed, deterministically.
    let read_ratio = [0.0, 0.3, 0.6, 0.9][(seed % 4) as usize];
    let skew = [0.0, 0.8, 1.3][(seed % 3) as usize];
    let ops = [1u32, 1, 2][(seed % 3) as usize];
    WorkloadSpec::default()
        .with_items(48)
        .with_read_ratio(read_ratio)
        .with_skew(skew)
        .with_ops_per_txn(ops)
        .with_txns_per_client(8)
}

#[test]
fn soak_all_techniques_many_seeds() {
    for technique in Technique::ALL {
        for seed in 0..5u64 {
            let cfg = RunConfig::new(technique)
                .with_servers(3 + (seed % 2) as u32)
                .with_clients(3)
                .with_seed(1_000 + seed)
                .with_trace(false)
                .with_workload(mixed_workload(seed));
            let report = run(&cfg);
            // Termination.
            assert_eq!(
                report.ops_unanswered, 0,
                "{technique} seed {seed}: unanswered operations"
            );
            // Exactly-once accounting.
            assert_eq!(
                report.ops_completed,
                report.ops_committed + report.ops_aborted,
                "{technique} seed {seed}"
            );
            assert_eq!(
                report.ops_completed as usize,
                report.records.len(),
                "{technique} seed {seed}: record count mismatch"
            );
            // Convergence.
            assert!(
                report.converged(),
                "{technique} seed {seed}: fingerprints {:?}",
                report.fingerprints
            );
            // Strong techniques: 1SR, and no aborts except certification
            // and locking (which abort under contention by design).
            if technique.info().guarantee != Guarantee::Weak {
                report
                    .check_one_copy_serializable()
                    .unwrap_or_else(|e| panic!("{technique} seed {seed}: {e}"));
            }
            if !matches!(
                technique,
                Technique::Certification | Technique::EagerUpdateEverywhereLocking
            ) {
                assert_eq!(
                    report.ops_aborted, 0,
                    "{technique} seed {seed}: unexpected aborts"
                );
            }
        }
    }
}

#[test]
fn soak_deterministic_replay() {
    // Every technique's full report is a pure function of the config.
    for technique in Technique::ALL {
        let cfg = RunConfig::new(technique)
            .with_servers(3)
            .with_clients(2)
            .with_seed(77)
            .with_trace(false)
            .with_workload(mixed_workload(2));
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.ops_completed, b.ops_completed, "{technique}");
        assert_eq!(a.latencies.mean(), b.latencies.mean(), "{technique}");
        assert_eq!(a.fingerprints, b.fingerprints, "{technique}");
        assert_eq!(
            a.messages.messages_sent, b.messages.messages_sent,
            "{technique}"
        );
    }
}
