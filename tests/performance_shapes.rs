//! Shape checks for the promised performance study: the *relative*
//! results the taxonomy predicts must hold in measurement (who wins, in
//! which direction the curves bend) — absolute numbers are simulator
//! artifacts and are not asserted.

use replication::core::protocols::common::AbcastImpl;
use replication::db::DeadlockPolicy;
use replication::sim::SimDuration;
use replication::{run, RunConfig, Technique, WorkloadSpec};

fn updates(txns: u32) -> WorkloadSpec {
    WorkloadSpec::default()
        .with_items(128)
        .with_read_ratio(0.0)
        .with_txns_per_client(txns)
}

fn mean_latency(technique: Technique, servers: u32) -> u64 {
    let cfg = RunConfig::new(technique)
        .with_servers(servers)
        .with_clients(2)
        .with_seed(61)
        .with_trace(false)
        .with_workload(updates(10));
    run(&cfg).latencies.mean().ticks()
}

#[test]
fn lazy_techniques_answer_faster_than_eager_ones() {
    let lazy = mean_latency(Technique::LazyPrimary, 3);
    for eager in [
        Technique::EagerPrimary,
        Technique::EagerUpdateEverywhereLocking,
        Technique::EagerUpdateEverywhereAbcast,
        Technique::Passive,
    ] {
        let e = mean_latency(eager, 3);
        assert!(
            lazy < e,
            "lazy ({lazy}t) should beat {eager} ({e}t): it answers in one round trip"
        );
    }
}

#[test]
fn distributed_locking_pays_more_rounds_than_abcast_ordering() {
    // Fig. 8 vs Fig. 9: locking needs lock-request/grant plus 2PC; the
    // ABCAST technique needs one ordering. Both latency and messages/op
    // should favour ABCAST.
    let lock = run(&RunConfig::new(Technique::EagerUpdateEverywhereLocking)
        .with_servers(3)
        .with_clients(2)
        .with_seed(67)
        .with_trace(false)
        .with_workload(updates(10)));
    let ab = run(&RunConfig::new(Technique::EagerUpdateEverywhereAbcast)
        .with_servers(3)
        .with_clients(2)
        .with_seed(67)
        .with_trace(false)
        .with_workload(updates(10)));
    assert!(
        lock.latencies.mean() > ab.latencies.mean(),
        "locking {} vs abcast {}",
        lock.latencies.mean(),
        ab.latencies.mean()
    );
    assert!(
        lock.messages_per_op() > ab.messages_per_op(),
        "locking {} vs abcast {} msgs/op",
        lock.messages_per_op(),
        ab.messages_per_op()
    );
}

#[test]
fn message_cost_grows_with_replication_degree() {
    for technique in [
        Technique::Active,
        Technique::Passive,
        Technique::EagerPrimary,
    ] {
        let small = run(&RunConfig::new(technique)
            .with_servers(2)
            .with_clients(1)
            .with_seed(71)
            .with_trace(false)
            .with_workload(updates(8)));
        let large = run(&RunConfig::new(technique)
            .with_servers(8)
            .with_clients(1)
            .with_seed(71)
            .with_trace(false)
            .with_workload(updates(8)));
        assert!(
            large.messages_per_op() > small.messages_per_op(),
            "{technique}: messages/op must grow with n ({} vs {})",
            small.messages_per_op(),
            large.messages_per_op()
        );
    }
}

#[test]
fn sequencer_abcast_is_cheaper_than_consensus_abcast() {
    let seq = run(&RunConfig::new(Technique::Active)
        .with_servers(4)
        .with_clients(2)
        .with_seed(73)
        .with_abcast(AbcastImpl::Sequencer)
        .with_trace(false)
        .with_workload(updates(8)));
    let cons = run(&RunConfig::new(Technique::Active)
        .with_servers(4)
        .with_clients(2)
        .with_seed(73)
        .with_abcast(AbcastImpl::Consensus)
        .with_trace(false)
        .with_workload(updates(8)));
    assert!(
        seq.messages_per_op() < cons.messages_per_op(),
        "sequencer {} vs consensus {} msgs/op",
        seq.messages_per_op(),
        cons.messages_per_op()
    );
    assert!(seq.latencies.mean() <= cons.latencies.mean());
}

#[test]
fn wound_wait_resolves_contention_faster_than_periodic_detection() {
    // Under a deadlock-prone workload, prevention acts immediately while
    // detection waits for the probe period — wall-clock (virtual) runtime
    // should favour wound-wait.
    let contended = WorkloadSpec::default()
        .with_items(4)
        .with_read_ratio(0.0)
        .with_ops_per_txn(2)
        .with_skew(1.0)
        .with_txns_per_client(6);
    let ww = run(&RunConfig::new(Technique::EagerUpdateEverywhereLocking)
        .with_servers(2)
        .with_clients(3)
        .with_seed(79)
        .with_deadlock(DeadlockPolicy::WoundWait)
        .with_trace(false)
        .with_workload(contended.clone()));
    let det = run(&RunConfig::new(Technique::EagerUpdateEverywhereLocking)
        .with_servers(2)
        .with_clients(3)
        .with_seed(79)
        .with_deadlock(DeadlockPolicy::Detect)
        .with_trace(false)
        .with_workload(contended));
    assert_eq!(ww.ops_unanswered, 0, "wound-wait run incomplete");
    assert_eq!(det.ops_unanswered, 0, "detection run incomplete");
    assert!(
        ww.duration <= det.duration,
        "wound-wait {} should finish no later than detection {}",
        ww.duration,
        det.duration
    );
}

#[test]
fn wider_staleness_window_means_more_stale_reads() {
    let workload = WorkloadSpec::default()
        .with_items(3)
        .with_read_ratio(0.6)
        .with_txns_per_client(12)
        .with_think_time(SimDuration::from_ticks(500));
    let narrow: usize = [1u64, 2, 3]
        .iter()
        .map(|&seed| {
            run(&RunConfig::new(Technique::LazyPrimary)
                .with_servers(3)
                .with_clients(3)
                .with_seed(seed)
                .with_propagation_delay(SimDuration::from_ticks(500))
                .with_workload(workload.clone()))
            .stale_reads()
            .len()
        })
        .sum();
    let wide: usize = [1u64, 2, 3]
        .iter()
        .map(|&seed| {
            run(&RunConfig::new(Technique::LazyPrimary)
                .with_servers(3)
                .with_clients(3)
                .with_seed(seed)
                .with_propagation_delay(SimDuration::from_ticks(40_000))
                .with_workload(workload.clone()))
            .stale_reads()
            .len()
        })
        .sum();
    assert!(
        wide >= narrow,
        "staleness must not shrink as the window widens ({narrow} -> {wide})"
    );
    assert!(wide > 0, "wide window produced no staleness at all");
}

#[test]
fn certification_abort_rate_grows_with_skew() {
    let abort_rate = |skew: f64| -> f64 {
        let mut aborted = 0u64;
        let mut completed = 0u64;
        for seed in [1u64, 2, 3] {
            let r = run(&RunConfig::new(Technique::Certification)
                .with_servers(3)
                .with_clients(4)
                .with_seed(seed)
                .with_trace(false)
                .with_workload(
                    WorkloadSpec::default()
                        .with_items(64)
                        .with_read_ratio(0.5)
                        .with_ops_per_txn(2)
                        .with_skew(skew)
                        .with_txns_per_client(10)
                        .with_think_time(SimDuration::from_ticks(50)),
                ));
            aborted += r.ops_aborted;
            completed += r.ops_completed;
        }
        aborted as f64 / completed.max(1) as f64
    };
    let low = abort_rate(0.0);
    let high = abort_rate(1.5);
    assert!(
        high > low,
        "abort rate must grow with contention (uniform={low:.3}, zipf1.5={high:.3})"
    );
}
