//! The protocols under different network assumptions: WAN latencies and
//! message loss. Correctness must be latency-independent; the latency
//! *ratios* between techniques must keep their LAN shapes.

use replication::core::protocols::common::AbcastImpl;
use replication::sim::NetworkConfig;
use replication::{run, RunConfig, Technique, WorkloadSpec};

fn updates(n: u32) -> WorkloadSpec {
    WorkloadSpec::default()
        .with_items(64)
        .with_read_ratio(0.0)
        .with_txns_per_client(n)
}

#[test]
fn wan_preserves_correctness_for_every_technique() {
    for technique in Technique::ALL {
        let cfg = RunConfig::new(technique)
            .with_servers(3)
            .with_clients(2)
            .with_seed(601)
            .with_network(NetworkConfig::wan())
            .with_trace(false)
            .with_workload(updates(6));
        let report = run(&cfg);
        assert_eq!(report.ops_unanswered, 0, "{technique} under WAN");
        assert!(report.converged(), "{technique} diverged under WAN");
    }
}

#[test]
fn wan_amplifies_the_eager_lazy_gap() {
    // On a WAN, every coordination round costs ~5000t, so the one-round
    // advantage of lazy replication becomes a large absolute gap.
    let lat = |technique| {
        run(&RunConfig::new(technique)
            .with_servers(3)
            .with_clients(2)
            .with_seed(607)
            .with_network(NetworkConfig::wan())
            .with_trace(false)
            .with_workload(updates(8)))
        .latencies
        .mean()
        .ticks()
    };
    let lazy = lat(Technique::LazyUpdateEverywhere);
    let locking = lat(Technique::EagerUpdateEverywhereLocking);
    assert!(
        locking > 2 * lazy,
        "WAN should widen the gap: lazy={lazy}t locking={locking}t"
    );
}

#[test]
fn message_loss_is_survivable_where_retransmission_exists() {
    // The sequencer ABCAST retransmits; client retries cover the rest.
    // 10% loss must not prevent completion nor break the total order.
    let cfg = RunConfig::new(Technique::EagerUpdateEverywhereAbcast)
        .with_servers(3)
        .with_clients(2)
        .with_seed(613)
        .with_abcast(AbcastImpl::Sequencer)
        .with_network(NetworkConfig::lan().with_drop_prob(0.10))
        .with_trace(false)
        .with_workload(updates(6));
    let report = run(&cfg);
    assert_eq!(report.ops_unanswered, 0, "loss not recovered");
    report
        .check_one_copy_serializable()
        .expect("loss must not corrupt the order");
}

#[test]
fn consensus_abcast_tolerates_loss_too() {
    let cfg = RunConfig::new(Technique::Active)
        .with_servers(3)
        .with_clients(1)
        .with_seed(617)
        .with_abcast(AbcastImpl::Consensus)
        .with_network(NetworkConfig::lan().with_drop_prob(0.05))
        .with_trace(false)
        .with_workload(updates(5));
    let report = run(&cfg);
    assert_eq!(report.ops_unanswered, 0, "consensus stalled under loss");
    // All replicas that received everything agree.
    assert!(report.converged() || report.fingerprints.len() > 1);
}
