//! Integration tests for the executable taxonomy: every technique's
//! measured behaviour must match the paper's claims (Figures 5, 6, 15,
//! 16), including the ablation that *removes* the paper's stated
//! requirement and watches the guarantee break.

use replication::core::protocols::common::ExecutionMode;
use replication::sim::SimDuration;
use replication::{run, Guarantee, Propagation, RunConfig, Technique, WorkloadSpec};

fn update_only(txns: u32) -> WorkloadSpec {
    WorkloadSpec::default()
        .with_items(32)
        .with_read_ratio(0.0)
        .with_txns_per_client(txns)
}

fn figure_cfg(technique: Technique) -> RunConfig {
    let mut cfg = RunConfig::new(technique)
        .with_clients(1)
        .with_seed(17)
        .with_workload(update_only(4));
    if technique == Technique::SemiActive {
        cfg = cfg.with_exec(ExecutionMode::NonDeterministic);
    }
    if technique.info().propagation == Propagation::Lazy {
        cfg = cfg.with_propagation_delay(SimDuration::from_ticks(2_000));
    }
    cfg
}

#[test]
fn figure_16_every_technique_reproduces_its_phase_row() {
    for technique in Technique::ALL {
        let report = run(&figure_cfg(technique));
        let measured = report.canonical_skeleton().expect("ops completed");
        assert_eq!(
            measured.to_string(),
            technique.claimed_skeleton(),
            "{technique}"
        );
    }
}

#[test]
fn figure_15_sync_before_response_iff_strong_consistency() {
    for technique in Technique::ALL {
        let report = run(&figure_cfg(technique));
        let sk = report.canonical_skeleton().expect("ops completed");
        assert_eq!(
            sk.synchronises_before_response(),
            technique.info().guarantee != Guarantee::Weak,
            "{technique}: Figure 15's claim violated"
        );
    }
}

#[test]
fn eager_equals_agreement_before_response_lazy_equals_after() {
    for technique in Technique::ALL {
        let report = run(&figure_cfg(technique));
        let sk = report.canonical_skeleton().expect("ops completed");
        assert_eq!(
            sk.responds_before_agreement(),
            technique.info().propagation == Propagation::Lazy,
            "{technique}"
        );
    }
}

#[test]
fn strong_techniques_converge_and_serialize_under_contention() {
    let workload = WorkloadSpec::default()
        .with_items(8) // hot
        .with_read_ratio(0.3)
        .with_skew(0.9)
        .with_txns_per_client(10);
    for technique in Technique::ALL {
        if technique.info().guarantee == Guarantee::Weak {
            continue;
        }
        let cfg = RunConfig::new(technique)
            .with_servers(3)
            .with_clients(3)
            .with_seed(23)
            .with_workload(workload.clone());
        let report = run(&cfg);
        assert!(report.converged(), "{technique} diverged");
        report
            .check_one_copy_serializable()
            .unwrap_or_else(|e| panic!("{technique}: {e}"));
        assert_eq!(report.ops_unanswered, 0, "{technique} left clients hanging");
    }
}

#[test]
fn ablation_nondeterminism_breaks_active_but_not_its_refinements() {
    // The paper's Figure 5 determinism axis, executed: the same
    // non-deterministic servers diverge under active replication but stay
    // consistent under semi-active (leader choice), passive (single
    // executor) and semi-passive (single deferred executor).
    let base = |t: Technique| {
        RunConfig::new(t)
            .with_clients(2)
            .with_seed(31)
            .with_exec(ExecutionMode::NonDeterministic)
            .with_workload(update_only(6))
    };
    let active = run(&base(Technique::Active));
    assert!(
        !active.converged(),
        "active replication should diverge without determinism"
    );
    for t in [
        Technique::SemiActive,
        Technique::Passive,
        Technique::SemiPassive,
    ] {
        let report = run(&base(t));
        assert!(report.converged(), "{t} must tolerate non-determinism");
    }
}

#[test]
fn ablation_lazy_update_everywhere_loses_conflicting_updates() {
    // Weak consistency is not an abstract label: under a hot-key write
    // workload, lazy UE reconciles (discards) committed updates, while
    // its eager counterpart never does.
    let workload = WorkloadSpec::default()
        .with_items(4)
        .with_read_ratio(0.0)
        .with_skew(1.2)
        .with_txns_per_client(10);
    let lazy = run(&RunConfig::new(Technique::LazyUpdateEverywhere)
        .with_servers(3)
        .with_clients(3)
        .with_seed(37)
        .with_propagation_delay(SimDuration::from_ticks(3_000))
        .with_workload(workload.clone()));
    assert!(lazy.converged(), "reconciliation must still converge");
    assert!(
        lazy.reconciliations > 0,
        "hot-key lazy UE should have discarded updates"
    );
    let eager = run(&RunConfig::new(Technique::EagerUpdateEverywhereAbcast)
        .with_servers(3)
        .with_clients(3)
        .with_seed(37)
        .with_workload(workload));
    assert_eq!(eager.reconciliations, 0);
    assert!(eager.converged());
}

#[test]
fn classification_metadata_matches_measured_communities() {
    // Primary-copy techniques must have exactly one executing site in
    // failure-free runs; update-everywhere techniques execute at all
    // sites. We verify through the response reads observed and the
    // message patterns indirectly: primary techniques route every update
    // through one node — their per-op message count grows linearly with
    // n like everyone else, but their histories only contain executions
    // at one site plus installs elsewhere. Here we check the simplest
    // observable: they all converge and answer.
    for technique in Technique::ALL {
        let report = run(&figure_cfg(technique));
        assert!(report.ops_completed > 0, "{technique}");
        assert!(report.converged(), "{technique}");
    }
}

#[test]
fn multi_operation_transactions_loop_their_phases() {
    // Section 5: the EX/AC (primary copy) and SC/EX (distributed locking)
    // pairs repeat per operation.
    let mut cfg = figure_cfg(Technique::EagerPrimary);
    cfg.workload = cfg.workload.with_ops_per_txn(3);
    let report = run(&cfg);
    let sk = report.canonical_skeleton().expect("ops completed");
    assert!(sk.has_loop(), "Fig. 12 loop missing: {sk}");

    let mut cfg = figure_cfg(Technique::EagerUpdateEverywhereLocking);
    cfg.workload = cfg.workload.with_ops_per_txn(3);
    let report = run(&cfg);
    let sk = report.canonical_skeleton().expect("ops completed");
    assert!(sk.has_loop(), "Fig. 13 loop missing: {sk}");

    // §5.3: lazy techniques are *unchanged* by multi-operation
    // transactions — same skeleton as single-op.
    let mut cfg = figure_cfg(Technique::LazyPrimary);
    cfg.workload = cfg.workload.with_ops_per_txn(3);
    let report = run(&cfg);
    let sk = report.canonical_skeleton().expect("ops completed");
    assert_eq!(sk.to_string(), Technique::LazyPrimary.claimed_skeleton());
}
