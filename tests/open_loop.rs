//! Open-loop (Poisson) workload tests: the arrival process the
//! performance study's saturation experiment (P7) relies on.

use replication::{run, Arrival, RunConfig, Technique, WorkloadSpec};

fn updates(n: u32) -> WorkloadSpec {
    WorkloadSpec::default()
        .with_items(64)
        .with_read_ratio(0.0)
        .with_txns_per_client(n)
}

#[test]
fn open_loop_completes_at_moderate_load() {
    for technique in [Technique::Active, Technique::LazyUpdateEverywhere] {
        let report = run(&RunConfig::new(technique)
            .with_servers(3)
            .with_clients(3)
            .with_seed(401)
            .with_arrival(Arrival::Open(1_000))
            .with_workload(updates(15)));
        assert_eq!(report.ops_unanswered, 0, "{technique}");
        assert_eq!(report.ops_completed, 45, "{technique}");
        assert!(report.converged(), "{technique}");
    }
}

#[test]
fn open_loop_allows_concurrent_outstanding_operations() {
    // With a tiny inter-arrival and non-trivial latency, several ops must
    // overlap: some operation is invoked before the previous response.
    let report = run(&RunConfig::new(Technique::Active)
        .with_servers(3)
        .with_clients(1)
        .with_seed(409)
        .with_arrival(Arrival::Open(50))
        .with_workload(updates(10)));
    let mut overlapped = false;
    let recs: Vec<_> = report.records.iter().map(|(_, r)| r).collect();
    for w in recs.windows(2) {
        if let (Some(resp0), invoked1) = (w[0].responded, w[1].invoked) {
            if invoked1 < resp0 {
                overlapped = true;
            }
        }
    }
    assert!(overlapped, "expected pipelined operations under open loop");
    assert_eq!(report.ops_unanswered, 0);
    report
        .check_one_copy_serializable()
        .expect("pipelining must stay 1SR");
}

#[test]
fn saturation_raises_latency_for_pipeline_bound_techniques() {
    let lat = |mean: u64| {
        run(&RunConfig::new(Technique::SemiPassive)
            .with_servers(3)
            .with_clients(3)
            .with_seed(419)
            .with_arrival(Arrival::Open(mean))
            .with_trace(false)
            .with_workload(updates(20)))
        .latencies
        .mean()
        .ticks()
    };
    let light = lat(5_000);
    let heavy = lat(100);
    assert!(
        heavy > 2 * light,
        "semi-passive should queue under open-loop overload (light={light}, heavy={heavy})"
    );
}

#[test]
fn open_loop_determinism() {
    let go = || {
        run(&RunConfig::new(Technique::Certification)
            .with_servers(3)
            .with_clients(2)
            .with_seed(421)
            .with_arrival(Arrival::Open(500))
            .with_trace(false)
            .with_workload(updates(12)))
    };
    let a = go();
    let b = go();
    assert_eq!(a.ops_completed, b.ops_completed);
    assert_eq!(a.latencies.mean(), b.latencies.mean());
    assert_eq!(a.fingerprints, b.fingerprints);
}
