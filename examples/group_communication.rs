//! Using the group-communication substrate directly — the paper's §3.1
//! abstractions as a library: Atomic Broadcast, consensus, and
//! view-synchronous broadcast with a crash.
//!
//! ```sh
//! cargo run --example group_communication
//! ```

use replication::gcs::testkit::ComponentActor;
use replication::gcs::{
    ConsensusAbcast, ConsensusConfig, ConsensusPool, ViewGroup, VsConfig, VsEvent,
};
use replication::sim::{NodeId, SimConfig, SimDuration, SimTime, World};

fn abcast_demo() {
    println!("== Atomic Broadcast (consensus-based, coordinator crashes) ==");
    let group: Vec<NodeId> = (0..4).map(NodeId::new).collect();
    let mut world = World::new(SimConfig::new(7));
    for i in 0..4u32 {
        let mut actor = ComponentActor::new(ConsensusAbcast::<u32>::new(
            NodeId::new(i),
            group.clone(),
            ConsensusConfig::default(),
        ));
        // Every node broadcasts two values, interleaved in time.
        for k in 0..2u32 {
            let v = i * 10 + k;
            actor = actor.with_step(
                SimDuration::from_ticks(10 + 400 * k as u64 + i as u64),
                move |ab, out| {
                    ab.broadcast(v, out);
                },
            );
        }
        world.add_actor(Box::new(actor));
    }
    // Crash the round-0 coordinator mid-stream.
    world.schedule_crash(SimTime::from_ticks(300), group[0]);
    world.start();
    world.run_until(SimTime::from_ticks(1_000_000));
    for &g in &group[1..] {
        let seq: Vec<u32> = world
            .actor_ref::<ComponentActor<ConsensusAbcast<u32>>>(g)
            .events
            .iter()
            .map(|(_, d)| d.payload)
            .collect();
        println!("  {g} delivered {seq:?}");
    }
    println!("  (identical order at every survivor, despite the crash)\n");
}

fn consensus_demo() {
    println!("== Consensus (three conflicting proposals) ==");
    let group: Vec<NodeId> = (0..3).map(NodeId::new).collect();
    let mut world = World::new(SimConfig::new(3));
    for i in 0..3u32 {
        let v = 100 * (i as u64 + 1);
        let actor = ComponentActor::new(ConsensusPool::<u64>::new(
            NodeId::new(i),
            group.clone(),
            ConsensusConfig::default(),
        ))
        .with_step(SimDuration::from_ticks(10 + i as u64), move |p, out| {
            p.propose(0, v, out);
        });
        world.add_actor(Box::new(actor));
    }
    world.start();
    world.run_until(SimTime::from_ticks(100_000));
    for &g in &group {
        let decided = world
            .actor_ref::<ComponentActor<ConsensusPool<u64>>>(g)
            .inner
            .decided(0)
            .copied();
        println!("  {g} decided {decided:?}");
    }
    println!();
}

fn vscast_demo() {
    println!("== View-synchronous broadcast (sender crashes mid-broadcast) ==");
    let group: Vec<NodeId> = (0..4).map(NodeId::new).collect();
    let mut world = World::new(SimConfig::new(11));
    for i in 0..4u32 {
        let mut actor = ComponentActor::new(ViewGroup::<u32>::new(
            NodeId::new(i),
            group.clone(),
            VsConfig::default(),
        ));
        if i == 0 {
            actor = actor.with_step(SimDuration::from_ticks(1_999), |vg, out| {
                vg.broadcast(42, out);
            });
        }
        world.add_actor(Box::new(actor));
    }
    world.schedule_crash(SimTime::from_ticks(2_000), group[0]);
    world.start();
    world.run_until(SimTime::from_ticks(200_000));
    for &g in &group[1..] {
        let host = world.actor_ref::<ComponentActor<ViewGroup<u32>>>(g);
        let delivered: Vec<u32> = host
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                VsEvent::Deliver { payload, .. } => Some(*payload),
                _ => None,
            })
            .collect();
        let views: Vec<u64> = host
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                VsEvent::ViewInstalled(v) => Some(v.id),
                _ => None,
            })
            .collect();
        println!("  {g}: delivered {delivered:?}, installed views {views:?}");
    }
    println!(
        "  (the message broadcast 1 tick before the crash reaches all\n\
         survivors via the flush — all-or-none — and view 1 excludes the corpse)"
    );
}

fn main() {
    abcast_demo();
    consensus_demo();
    vscast_demo();
}
