//! The full taxonomy, executed: runs all ten techniques of Wiesmann et
//! al. under one workload and prints the comparison the paper could only
//! draw as diagrams — plus the regenerated classification figures.
//!
//! ```sh
//! cargo run --example taxonomy_tour
//! ```

use replication::{figures, run, Guarantee, RunConfig, Technique, WorkloadSpec};

fn main() {
    println!("{}", figures::fig1_functional_model());
    println!("{}", figures::fig5_ds_matrix());
    println!("{}", figures::fig6_db_matrix());

    println!(
        "{:<34} {:<18} {:>9} {:>9} {:>8} {:>7}  verified",
        "technique", "phases (measured)", "mean lat", "msgs/op", "aborts", "conv"
    );
    for technique in Technique::ALL {
        let cfg = RunConfig::new(technique)
            .with_servers(3)
            .with_clients(3)
            .with_seed(7)
            .with_workload(
                WorkloadSpec::default()
                    .with_items(64)
                    .with_read_ratio(0.5)
                    .with_txns_per_client(15),
            );
        let report = run(&cfg);
        let verdict = match technique.info().guarantee {
            Guarantee::Weak => {
                let stale = report.stale_reads().len();
                format!(
                    "weak: {} stale reads, {} reconciliations",
                    stale, report.reconciliations
                )
            }
            _ => format!(
                "strong: 1SR={}",
                report.check_one_copy_serializable().is_ok()
            ),
        };
        println!(
            "{:<34} {:<18} {:>8}t {:>9.1} {:>8} {:>7}  {}",
            technique.name(),
            report
                .canonical_skeleton()
                .map(|s| s.to_string())
                .unwrap_or_default(),
            report.latencies.mean().ticks(),
            report.messages_per_op(),
            report.ops_aborted,
            report.converged(),
            verdict,
        );
    }

    println!();
    println!("{}", figures::fig15_combinations());
    println!("{}", figures::fig16_synthetic_view());
}
