//! Quickstart: run one replication technique and inspect what happened.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use replication::{figures, run, RunConfig, Technique, WorkloadSpec};

fn main() {
    // Active replication (the state-machine approach), 5 replicas, a
    // read-heavy workload from 4 closed-loop clients.
    let cfg = RunConfig::new(Technique::Active)
        .with_servers(5)
        .with_clients(4)
        .with_seed(2026)
        .with_workload(
            WorkloadSpec::default()
                .with_items(256)
                .with_read_ratio(0.7)
                .with_txns_per_client(25),
        );
    let report = run(&cfg);

    println!("== {} ==", report.technique);
    println!("{}", report.summary());
    println!(
        "latency: mean={}t p99={}t",
        report.latencies.mean().ticks(),
        {
            let mut l = report.latencies.clone();
            l.percentile(0.99).ticks()
        }
    );
    println!("replicas converged: {}", report.converged());
    println!(
        "one-copy serializable: {}",
        report.check_one_copy_serializable().is_ok()
    );
    println!(
        "phase skeleton: {}",
        report.canonical_skeleton().expect("ops completed")
    );
    println!();
    // The paper's Figure 2, regenerated from a live run.
    println!("{}", figures::phase_diagram(Technique::Active, 1));
}
