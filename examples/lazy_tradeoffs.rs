//! The eager/lazy trade-off, measured: response time against staleness
//! and reconciliation — the crossover the paper's Section 4.5/4.6
//! describes qualitatively.
//!
//! ```sh
//! cargo run --example lazy_tradeoffs
//! ```

use replication::sim::SimDuration;
use replication::{run, RunConfig, Technique, WorkloadSpec};

fn main() {
    let workload = WorkloadSpec::default()
        .with_items(24) // small and hot: conflicts are likely
        .with_read_ratio(0.6)
        .with_skew(0.8)
        .with_txns_per_client(20);

    println!(
        "{:<34} {:>10} {:>12} {:>12} {:>16}",
        "technique", "mean lat", "stale reads", "reconciled", "lost updates?"
    );
    for (technique, delay) in [
        (Technique::EagerPrimary, 0u64),
        (Technique::EagerUpdateEverywhereAbcast, 0),
        (Technique::LazyPrimary, 2_000),
        (Technique::LazyPrimary, 20_000),
        (Technique::LazyUpdateEverywhere, 2_000),
        (Technique::LazyUpdateEverywhere, 20_000),
    ] {
        let cfg = RunConfig::new(technique)
            .with_servers(4)
            .with_clients(4)
            .with_seed(5)
            .with_propagation_delay(SimDuration::from_ticks(delay))
            .with_workload(workload.clone());
        let report = run(&cfg);
        let label = if delay == 0 {
            technique.name().to_string()
        } else {
            format!("{} (delay {}t)", technique.name(), delay)
        };
        println!(
            "{:<34} {:>9}t {:>12} {:>12} {:>16}",
            label,
            report.latencies.mean().ticks(),
            report.stale_reads().len(),
            report.reconciliations,
            if report.reconciliations > 0 {
                "yes (reconciled)"
            } else {
                "no"
            },
        );
    }
    println!();
    println!(
        "Shape check (paper §4.5–4.6): the lazy techniques answer in one\n\
         client round-trip — faster than any eager technique — but secondaries\n\
         serve stale reads, and lazy update everywhere silently discards the\n\
         losers of concurrent conflicting updates."
    );
}
