//! Failover drill: crash the primary (or a replica) mid-run and watch how
//! each fault-tolerance strategy recovers — the paper's Figure 5 contrast
//! made measurable.
//!
//! Active replication masks the crash entirely (no reconfiguration);
//! passive replication pays a view change; the database hot-standby pays
//! failure detection plus takeover; semi-passive pays only a consensus
//! round rotation.
//!
//! ```sh
//! cargo run --example failover_drill
//! ```

use repl_core::protocols::common::AbcastImpl;
use repl_sim::NodeId;
use replication::sim::SimTime;
use replication::workload::CrashSchedule;
use replication::{run, RunConfig, Technique, WorkloadSpec};

fn main() {
    let crash_at = SimTime::from_ticks(3_000);
    println!("crashing server 0 (the primary/sequencer-rank node) at {crash_at}");
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>10} {:>7}",
        "technique", "completed", "mean lat", "worst lat", "retries", "conv"
    );
    for technique in [
        Technique::Active,
        Technique::SemiPassive,
        Technique::Passive,
        Technique::EagerPrimary,
    ] {
        let cfg = RunConfig::new(technique)
            .with_servers(5)
            .with_clients(3)
            .with_seed(11)
            // Active replication needs the crash-tolerant ABCAST.
            .with_abcast(AbcastImpl::Consensus)
            .with_crashes(CrashSchedule::new().crash_at(crash_at, NodeId::new(0)))
            .with_workload(
                WorkloadSpec::default()
                    .with_items(64)
                    .with_read_ratio(0.0)
                    .with_txns_per_client(12),
            );
        let report = run(&cfg);
        let mut lat = report.latencies.clone();
        // Convergence among survivors (index 0 is the corpse).
        let survivors_converged = report.fingerprints[1..].windows(2).all(|w| w[0] == w[1]);
        println!(
            "{:<22} {:>10} {:>11}t {:>11}t {:>10} {:>7}",
            technique.name(),
            report.ops_completed,
            report.latencies.mean().ticks(),
            lat.percentile(1.0).ticks(),
            report.client_retries,
            survivors_converged,
        );
    }
    println!();
    println!(
        "The worst-case latency is the operation that straddled the crash: it\n\
         absorbs the failure-detection timeout plus the technique's\n\
         reconfiguration cost (view change, takeover, or — for active\n\
         replication — nothing but consensus re-rotation)."
    );
}
