//! # replication — an executable reproduction of
//! *Understanding Replication in Databases and Distributed Systems*
//! (Wiesmann, Pedone, Schiper, Kemme, Alonso — ICDCS 2000)
//!
//! The paper contributes a five-phase functional model (Request, Server
//! Coordination, Execution, Agreement Coordination, Response) and uses it
//! to compare replication techniques across the distributed-systems and
//! database communities. This workspace makes the framework executable:
//! all ten techniques run as real message-passing protocols over
//! from-scratch substrates, the paper's figures are regenerated from
//! executed traces, and the performance study the paper *promised* is
//! implemented as the benchmark suite.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`sim`] | deterministic discrete-event simulator |
//! | [`gcs`] | group communication: broadcasts, failure detector, consensus, ABCAST, VSCAST |
//! | [`db`]  | database kernel: versioned store, 2PL, transactions, 2PC, 1SR checking |
//! | [`workload`] | workload and fault-load generators |
//! | [`core`] | the ten techniques, the functional model, oracles, runner, figures |
//!
//! ## Quickstart
//!
//! ```
//! use replication::{run, RunConfig, Technique};
//!
//! let report = run(&RunConfig::new(Technique::Active).with_seed(7));
//! assert!(report.converged());
//! assert_eq!(
//!     report.canonical_skeleton().expect("ops ran").to_string(),
//!     "RE SC EX END",
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use repl_core as core;
pub use repl_db as db;
pub use repl_gcs as gcs;
pub use repl_sim as sim;
pub use repl_workload as workload;

pub use repl_core::{
    figures, run, try_run, Arrival, Availability, BatchConfig, DurabilityConfig, DurabilityReport,
    Guarantee, Phase, PhaseSkeleton, Propagation, RunConfig, RunError, RunReport, SilentLoss,
    Technique, MAX_CLIENTS,
};
pub use repl_sim::LatencyHistogram;
pub use repl_workload::{ArrivalDist, ArrivalStream, FaultPlan, FaultPlanError, WorkloadSpec};
