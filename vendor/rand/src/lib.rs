//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no access to crates.io,
//! so the workspace vendors the *small slice* of `rand`'s 0.8 API that it
//! actually uses:
//!
//! * [`rngs::SmallRng`] — a small, fast, seedable, reproducible PRNG
//!   (xoshiro256++, the same family the real `SmallRng` uses on 64-bit
//!   targets), seeded via SplitMix64 like the reference implementation;
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen`] for `f64`, `f32`, `bool` and the integer primitives;
//! * [`Rng::gen_range`] over `Range`/`RangeInclusive` of the integer
//!   primitives and `f64`;
//! * [`Rng::gen_bool`].
//!
//! The streams differ from the real crate (no attempt is made to match
//! `rand`'s exact output), but every consumer in this workspace only
//! relies on *determinism per seed*, which this crate guarantees: the
//! same seed always yields the same sequence, on every platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 32/64-bit words. Mirrors `rand_core::RngCore`.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A reproducibly seedable RNG. Mirrors `rand_core::SeedableRng`, but only
/// the `seed_from_u64` entry point this workspace uses.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed. The same seed always produces
    /// the same stream.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce from uniform random bits.
pub trait Standard: Sized {
    /// Samples one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the real crate's
    /// `Standard` distribution for `f64`).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_int_ranges!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}
impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Uniform value in `[0, bound)` by widening multiply (Lemire's method,
/// without the rejection step — a bias below 2^-64, irrelevant here and
/// fully deterministic).
fn bounded<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    (((rng.next_u64() as u128) * (bound as u128)) >> 64) as u64
}

/// Convenience sampling methods over any [`RngCore`]. Mirrors `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of an inferred type uniformly at random.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns true with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, reproducible PRNG: xoshiro256++ seeded via
    /// SplitMix64 — the same construction the real `SmallRng` uses on
    /// 64-bit platforms (different stream, same statistical class).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, per Vigna's reference code.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x), "{x} outside [0,1)");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(5u32..=5);
            assert_eq!(y, 5);
            let z = r.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&z));
            let f = r.gen_range(1e-9..1.0f64);
            assert!((1e-9..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_full_span() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "span not covered: {seen:?}");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(1);
        let _ = r.gen_range(5u64..5);
    }
}
