//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment of this repository has no access to crates.io,
//! so the workspace vendors the subset of criterion's API its benches
//! use: [`criterion_group!`]/[`criterion_main!`], [`Criterion`],
//! benchmark groups, [`Bencher::iter`] and [`black_box`].
//!
//! Measurement model: each benchmark runs `sample_size` samples after one
//! warm-up sample; a sample times a batch of iterations sized so one
//! sample takes roughly 10 ms of wall clock. The harness reports
//! mean/min/max per-iteration time in plain text. There are no plots, no
//! statistical tests, and no saved baselines — numbers print to stdout
//! and flow into the repo's `BENCH_*.json` artifacts instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness handle passed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 20,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        run_one(&id.into(), 20, &mut f);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, &mut f);
        self
    }

    /// Finishes the group (reporting already happened per-benchmark).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    // Warm-up and calibration sample: measure one iteration to size
    // batches at ~10 ms.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let batch =
        (Duration::from_millis(10).as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / batch as f64);
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "bench: {id:<50} {:>12} /iter (min {}, max {}, {} samples x {} iters)",
        fmt_time(mean),
        fmt_time(min),
        fmt_time(max),
        samples,
        batch,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Times closures; handed to bench functions by the harness.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it once per iteration of the current batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        let mut runs = 0u64;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert!(runs > 0);
    }

    #[test]
    fn format_spans_units() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" us"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
