//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors the subset of proptest's API that its property
//! tests actually use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * [`strategy::Strategy`] with [`strategy::Strategy::prop_map`],
//! * range strategies (`0u64..100`, `0.0f64..=1.0`, …) and [`any`],
//! * tuple strategies up to arity 4,
//! * [`collection::vec`] and [`collection::btree_set`],
//! * [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`].
//!
//! Semantics: each test body runs `cases` times with independently drawn
//! random inputs from a deterministic per-test seed, so failures are
//! reproducible run-to-run. There is **no shrinking** — a failing case
//! panics with the standard assertion message. That is a deliberate
//! trade-off to keep the vendored crate small; determinism of the inputs
//! makes failures debuggable without it.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Per-block test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate's default.
        ProptestConfig { cases: 256 }
    }
}

/// A rejected or failed test case, as produced by `TestCaseError::fail`
/// or the `?` operator inside a [`proptest!`] body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    reason: String,
}

impl TestCaseError {
    /// Marks the current case as failed with the given reason.
    pub fn fail(reason: impl std::fmt::Display) -> Self {
        TestCaseError {
            reason: reason.to_string(),
        }
    }

    /// Marks the current case as rejected. The stand-in has no retry
    /// budget, so rejection is treated like failure.
    pub fn reject(reason: impl std::fmt::Display) -> Self {
        Self::fail(reason)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.reason)
    }
}

impl std::error::Error for TestCaseError {}

/// Result alias used by generated test bodies; lets `?` work inside
/// [`proptest!`] blocks just like the real crate.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs `body` for each random case. Used by the [`proptest!`] expansion;
/// not part of the public proptest API.
#[doc(hidden)]
pub fn run_cases<F: FnMut(&mut SmallRng)>(config: ProptestConfig, test_name: &str, mut body: F) {
    // Deterministic per-test seed: same inputs every run, distinct
    // streams per test.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..config.cases {
        let mut rng =
            SmallRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        body(&mut rng);
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Generates random values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Boxes the strategy (for heterogeneous collections such as
        /// [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut SmallRng) -> V {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies; built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct OneOf<V> {
        /// The candidate strategies (chosen uniformly).
        pub options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut SmallRng) -> V {
            assert!(!self.options.is_empty(), "prop_oneof! needs options");
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<V>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut SmallRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategies!(u8, u16, u32, u64, usize, i32, i64, f64);

    /// Full-domain strategy returned by [`any`](crate::any).
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    macro_rules! impl_any {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    impl_any!(bool, u8, u16, u32, u64, usize, i32, i64, f64);

    macro_rules! impl_tuple_strategies {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategies! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }
}

/// Returns a strategy producing any value of `T`.
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any(core::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Element-count specification: an exact count or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }
    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }
    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.lo..self.hi)
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with `size` elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Duplicates shrink the set below target; bound the retries so
            // narrow domains (e.g. 0..2 with target 5) still terminate.
            let mut attempts = 0;
            while set.len() < target && attempts < 20 * (target + 1) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// Generates ordered sets of `element` values aiming for `size`
    /// elements (possibly fewer when the element domain is narrow).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError, TestCaseResult};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                // The body runs in a Result-returning closure so `?` and
                // `TestCaseError` work exactly as in the real crate.
                let __outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("test case failed: {e}");
                }
            });
        }
    )*};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf {
            options: vec![$($crate::strategy::Strategy::boxed($strat)),+],
        }
    };
}

/// `assert!` under a name the real proptest uses inside generated tests.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under the proptest name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under the proptest name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0.0f64..=1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u8..4, any::<bool>()).prop_map(|(a, b)| (a as u32, b)),
            v in crate::collection::vec(0u32..100, 1..8),
        ) {
            prop_assert!(pair.0 < 4);
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn oneof_picks_each_arm(choice in prop_oneof![
            (0u8..1).prop_map(|_| "left"),
            (0u8..1).prop_map(|_| "right"),
        ]) {
            prop_assert!(choice == "left" || choice == "right");
        }

        #[test]
        fn btree_sets_respect_domain(s in crate::collection::btree_set(0u32..5, 1..5)) {
            prop_assert!(!s.is_empty());
            prop_assert!(s.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        crate::run_cases(ProptestConfig::with_cases(10), "det", |rng| {
            first.push(rand::Rng::gen_range(rng, 0u64..1_000_000));
        });
        let mut second = Vec::new();
        crate::run_cases(ProptestConfig::with_cases(10), "det", |rng| {
            second.push(rand::Rng::gen_range(rng, 0u64..1_000_000));
        });
        assert_eq!(first, second);
        assert!(first.windows(2).any(|w| w[0] != w[1]), "degenerate stream");
    }
}
